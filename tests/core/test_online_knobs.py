"""Online-update knobs: reassignment_mode policies and fault_trace_."""

import numpy as np
import pytest

from repro import FTKMeans
from repro.core.config import KMeansConfig


def two_blob_batch(rng, m=256, n_features=4):
    """Two tight far-apart blobs: with K > 2 several clusters starve."""
    half = m // 2
    a = rng.normal(0, 0.1, (half, n_features)) + 5.0
    b = rng.normal(0, 0.1, (m - half, n_features)) - 5.0
    return np.vstack([a, b]).astype(np.float32)


def run_stream(mode, *, seed=0, ratio=0.2, batches=6, **kw):
    rng = np.random.default_rng(3)
    km = FTKMeans(n_clusters=6, seed=seed, reassignment_mode=mode,
                  reassignment_ratio=ratio, **kw)
    for _ in range(batches):
        km.partial_fit(two_blob_batch(rng))
    return km


class TestReassignmentModes:
    def test_deterministic_default_unchanged(self):
        # the default mode is the existing behaviour: only clusters
        # with zero running weight are re-seeded
        km = run_stream("deterministic")
        assert km.config.reassignment_mode == "deterministic"
        assert (km.cluster_counts_ > 0).all()

    def test_count_threshold_zero_ratio_degenerates_to_deterministic(self):
        # threshold 0 re-seeds exactly the zero-count clusters: the two
        # policies must walk the identical stream, bit for bit
        det = run_stream("deterministic", ratio=0.0)
        thr = run_stream("count_threshold", ratio=0.0)
        assert np.array_equal(det.cluster_centers_, thr.cluster_centers_)
        assert np.array_equal(det.cluster_counts_, thr.cluster_counts_)

    def test_count_threshold_reseeds_low_count_clusters(self):
        # a high ratio forces re-seeds that the deterministic policy
        # (zero-count only) never performs, so the streams diverge
        det = run_stream("deterministic", ratio=0.5)
        thr = run_stream("count_threshold", ratio=0.5)
        assert not np.array_equal(det.cluster_centers_,
                                  thr.cluster_centers_)
        # and the policy stays reproducible under a fixed seed
        again = run_stream("count_threshold", ratio=0.5)
        assert np.array_equal(thr.cluster_centers_, again.cluster_centers_)

    def test_random_mode_reproducible_under_seed(self):
        a = run_stream("random", seed=7)
        b = run_stream("random", seed=7)
        assert np.array_equal(a.cluster_centers_, b.cluster_centers_)

    def test_random_mode_diverges_from_deterministic(self):
        det = run_stream("deterministic", seed=7)
        rnd = run_stream("random", seed=7)
        assert not np.array_equal(det.cluster_centers_,
                                  rnd.cluster_centers_)

    def test_random_mode_survives_degenerate_batch(self):
        # most of the batch sits exactly on one centroid (zero distance)
        # while several clusters are starved: fewer nonzero probabilities
        # than draws must fall back to uniform, not crash the stream
        c0 = np.zeros((4, 4), dtype=np.float32)
        c0[1:] += 50.0
        km = FTKMeans(n_clusters=4, seed=0, init_centroids=c0,
                      reassignment_mode="random", reassignment_ratio=0.5)
        batch = np.zeros((128, 4), dtype=np.float32)
        batch[-1] += 1.0   # a single off-centroid sample
        km.partial_fit(batch)
        assert km.n_batches_seen_ == 1

    def test_weighted_ewa_normalises_by_weight_total(self):
        # uniformly scaling all weights must not move the smoothed
        # per-sample inertia the convergence rule looks at
        rng = np.random.default_rng(0)
        batches = [rng.random((256, 8)).astype(np.float32)
                   for _ in range(4)]
        plain = FTKMeans(n_clusters=4, seed=0)
        scaled = FTKMeans(n_clusters=4, seed=0)
        for b in batches:
            plain.partial_fit(b)
            scaled.partial_fit(b, sample_weight=np.full(len(b), 100.0))
        assert scaled.ewa_inertia_ == pytest.approx(plain.ewa_inertia_,
                                                    rel=1e-9)

    def test_zero_weight_batch_does_not_move_convergence(self):
        rng = np.random.default_rng(0)
        km = FTKMeans(n_clusters=4, seed=0)
        for _ in range(3):
            km.partial_fit(rng.random((256, 8)).astype(np.float32))
        ewa_before = km.ewa_inertia_
        km.partial_fit(rng.random((64, 8)).astype(np.float32),
                       sample_weight=np.zeros(64))
        # an information-free batch: the smoothed inertia stays put
        assert km.ewa_inertia_ == ewa_before
        assert km.n_batches_seen_ == 4

    def test_modes_validated(self):
        with pytest.raises(ValueError, match="reassignment_mode"):
            KMeansConfig(reassignment_mode="chaos")
        with pytest.raises(ValueError, match="reassignment_ratio"):
            KMeansConfig(reassignment_ratio=1.5)

    def test_batch_size_fit_accepts_modes(self):
        rng = np.random.default_rng(0)
        x = np.vstack([two_blob_batch(rng) for _ in range(4)])
        km = FTKMeans(n_clusters=6, seed=0, batch_size=128, max_iter=3,
                      reassignment_mode="random",
                      reassignment_ratio=0.2).fit(x)
        assert km.cluster_centers_.shape == (6, 4)


class TestFaultTrace:
    def test_trace_records_injected_batches(self):
        rng = np.random.default_rng(0)
        km = FTKMeans(n_clusters=4, variant="ft", p_inject=1.0, seed=0)
        for _ in range(3):
            km.partial_fit(rng.random((256, 8)).astype(np.float32))
        assert len(km.fault_trace_) == 3
        assert [e["batch"] for e in km.fault_trace_] == [0, 1, 2]
        for entry in km.fault_trace_:
            assert entry["injected"] > 0
            assert entry["corrected"] <= entry["detected"]

    def test_trace_empty_without_injection(self):
        rng = np.random.default_rng(0)
        km = FTKMeans(n_clusters=4, seed=0)
        km.partial_fit(rng.random((128, 8)).astype(np.float32))
        assert km.fault_trace_ == []

    def test_trace_cleared_by_full_fit(self):
        rng = np.random.default_rng(0)
        km = FTKMeans(n_clusters=4, variant="ft", p_inject=1.0, seed=0)
        km.partial_fit(rng.random((128, 8)).astype(np.float32))
        assert km.fault_trace_
        km.fit(rng.random((128, 8)).astype(np.float32))
        # a full-batch fit starts a fresh story: no stale stream trace
        assert not hasattr(km, "fault_trace_")
