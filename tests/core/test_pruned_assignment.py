"""Property suite: bound-pruned assignment is **label- and bit-exact**.

The contract of :mod:`repro.core.bounds`: pruning a row is legal only
when the skip is provably bit-identical to recomputing it (bit-frozen
own centroid + margin-certified competitors), so a pruned multi-round
trajectory — labels, best-distance bit patterns, fused update sums —
matches the unpruned engine exactly for any chunk budget, worker count,
dtype, warm start or SEU injection history, including flips landing in
active-set chunks and in the bounds arrays themselves (which the
fingerprint check must catch and heal).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.schemes import get_scheme
from repro.core.accumulate import StreamedAccumulator
from repro.core.bounds import BoundsState, resolve_prune_mode
from repro.core.config import KMeansConfig
from repro.core.engine import EngineCancelled, FastPathEngine
from repro.core.update import UpdateStage
from repro.gpusim.counters import PerfCounters
from repro.gpusim.faults import FaultInjector
from repro.utils.bits import flip_bit

K, D = 8, 16


def _blobs(seed, m=2048, k=K, d=D, dtype=np.float32, noise=0.3,
           shuffle=False):
    """A converging workload: well-separated blobs, y0 near the truth."""
    rng = np.random.default_rng(seed)
    centers = (rng.normal(size=(k, d)) * 8.0).astype(dtype)
    x = np.concatenate([c + rng.normal(scale=noise,
                                       size=(m // k, d)).astype(dtype)
                        for c in centers])
    if shuffle:
        rng.shuffle(x)
    y0 = (centers + rng.normal(scale=0.05,
                               size=centers.shape).astype(dtype))
    return np.ascontiguousarray(x.astype(dtype)), y0.astype(dtype)


def _lloyd_step(x, labels, y):
    """Plain float64 mean update (empty clusters keep the old centroid)."""
    k, d = y.shape
    sums = np.zeros((k, d), dtype=np.float64)
    cnt = np.zeros(k)
    np.add.at(sums, labels, x.astype(np.float64))
    np.add.at(cnt, labels, 1)
    nz = cnt > 0
    y = y.copy()
    y[nz] = (sums[nz] / cnt[nz, None]).astype(y.dtype)
    return y


def _trajectory(x, y0, iters, *, prune, dtype=np.float32, tf32=True,
                chunk_bytes=None, workers=1, inject_seed=None,
                mutate=None, fuse=False):
    """Run ``iters`` Lloyd rounds on one engine; return everything
    comparable (per-round labels + best bits + optional fused sums)
    plus the engine stats.  ``mutate(it, eng)`` runs before each round
    (SEU-in-metadata tests)."""
    inj = (FaultInjector(np.random.default_rng(inject_seed), 0.7, dtype)
           if inject_seed is not None else None)
    eng = FastPathEngine(None, dtype, tf32=tf32, chunk_bytes=chunk_bytes,
                         workers=workers, injector=inj,
                         scheme=get_scheme("ftkmeans") if inj else None,
                         prune=prune)
    u = np.dtype(dtype).str.replace("f", "u")
    acc = StreamedAccumulator(y0.shape[0], x.shape[1]) if fuse else None
    rounds = []
    try:
        eng.begin_fit(x, y0.shape[0])
        y = y0.copy()
        for it in range(iters):
            if mutate is not None:
                mutate(it, eng)
            if acc is not None:
                acc.reset()
            labels, best = eng.assign(x, y, PerfCounters(),
                                      accumulator=acc)
            rec = {"labels": labels.copy(),
                   "best_bits": best.view(u).copy(),
                   "active_frac": eng.stats.last_active_frac}
            if acc is not None:
                rec["sums_bits"] = acc.packed().view(np.uint64).copy()
            rounds.append(rec)
            y = _lloyd_step(x, labels, y)
        stats = eng.stats
        bounds = None if eng._cache is None else eng._cache.bounds
    finally:
        eng.end_fit()
    return rounds, stats, bounds


def assert_trajectories_equal(got, ref):
    assert len(got) == len(ref)
    for it, (a, b) in enumerate(zip(got, ref)):
        assert np.array_equal(a["labels"], b["labels"]), f"round {it}"
        assert np.array_equal(a["best_bits"], b["best_bits"]), f"round {it}"
        if "sums_bits" in b:
            assert np.array_equal(a["sums_bits"], b["sums_bits"]), \
                f"round {it}"


@pytest.fixture(scope="module")
def blob_data():
    return _blobs(0)


class TestPrunedBitExactness:
    """The acceptance property: pruned trajectory == unpruned, bitwise,
    with pruning demonstrably engaged."""

    @pytest.mark.parametrize("mode", ["hamerly", "elkan"])
    def test_converging_fit_bit_exact_and_prunes(self, blob_data, mode):
        x, y0 = blob_data
        got, stats, _ = _trajectory(x, y0, 8, prune=mode, fuse=True)
        ref, ref_stats, _ = _trajectory(x, y0, 8, prune="off", fuse=True)
        assert_trajectories_equal(got, ref)
        assert ref_stats.rows_pruned == 0
        assert stats.rows_pruned > 0 and stats.pruned_passes > 0
        assert stats.last_active_frac == 0.0   # fully frozen at the end

    def test_active_frac_trajectory_collapses(self, blob_data):
        x, y0 = blob_data
        rounds, _, _ = _trajectory(x, y0, 8, prune="hamerly")
        fracs = [r["active_frac"] for r in rounds]
        assert fracs[0] == 1.0                 # no history yet
        assert fracs[-1] == 0.0                # converged: all pruned
        assert min(fracs) == 0.0

    def test_auto_resolves_to_hamerly(self):
        assert resolve_prune_mode("auto") == "hamerly"
        assert resolve_prune_mode("off") == "off"
        with pytest.raises(ValueError):
            resolve_prune_mode("bogus")
        with pytest.raises(ValueError):
            KMeansConfig(n_clusters=4, prune="bogus")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16),
           mode=st.sampled_from(["hamerly", "elkan"]),
           chunk_kb=st.sampled_from([None, 16, 64]),
           workers=st.sampled_from([1, 3]),
           dtype=st.sampled_from([np.float32, np.float64]),
           shuffle=st.booleans())
    def test_property_any_config_bit_exact(self, seed, mode, chunk_kb,
                                           workers, dtype, shuffle):
        x, y0 = _blobs(seed, m=1024, k=6, d=8, dtype=dtype,
                       shuffle=shuffle)
        kw = dict(dtype=dtype, tf32=dtype == np.float32,
                  chunk_bytes=None if chunk_kb is None else chunk_kb << 10,
                  workers=workers)
        got, stats, _ = _trajectory(x, y0, 6, prune=mode, fuse=True, **kw)
        ref, _, _ = _trajectory(x, y0, 6, prune="off", fuse=True, **kw)
        assert_trajectories_equal(got, ref)
        if not shuffle:
            # contiguous blobs: full convergence empties whole GEMM
            # units, so pruning demonstrably engaged
            assert stats.rows_pruned > 0

    def test_warm_start_prunes_immediately(self, blob_data):
        # converge first, then restart from the converged centroids:
        # round 2 of the warm fit freezes and prunes everything
        x, y0 = blob_data
        y = y0.copy()
        for _ in range(6):
            ref, _, _ = _trajectory(x, y, 1, prune="off")
            y = _lloyd_step(x, ref[0]["labels"], y)
        got, stats, _ = _trajectory(x, y, 4, prune="hamerly")
        ref, _, _ = _trajectory(x, y, 4, prune="off")
        assert_trajectories_equal(got, ref)
        assert stats.rows_pruned >= 2 * len(x)   # rounds 2..4 all pruned

    def test_single_cluster_fit(self):
        # K=1: no competitors — a frozen centroid alone certifies rows
        x, _ = _blobs(5, m=512, k=4, d=8)
        y0 = x[:1].copy()
        for mode in ("hamerly", "elkan"):
            got, stats, _ = _trajectory(x, y0, 5, prune=mode)
            ref, _, _ = _trajectory(x, y0, 5, prune="off")
            assert_trajectories_equal(got, ref)
            assert stats.rows_pruned > 0


class TestPrunedUnderInjection:
    """SEU interaction: the injector's plan streams are untouched by
    pruning (fault-planned chunks always compute in full), so injected
    runs stay bit-identical too — and flipped chunks stop being trusted
    as pruning history."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16),
           mode=st.sampled_from(["hamerly", "elkan"]),
           workers=st.sampled_from([1, 2]))
    def test_injected_runs_bit_exact(self, seed, mode, workers):
        x, y0 = _blobs(seed, m=1024, k=6, d=8)
        kw = dict(chunk_bytes=16 << 10, workers=workers, inject_seed=seed)
        got, _, _ = _trajectory(x, y0, 6, prune=mode, fuse=True, **kw)
        ref, _, _ = _trajectory(x, y0, 6, prune="off", fuse=True, **kw)
        assert_trajectories_equal(got, ref)

    def test_fault_planned_rows_not_trusted(self, blob_data):
        # with injection on, some rounds carry plans: their chunks'
        # bounds rows are invalidated, yet clean chunks still prune
        x, y0 = blob_data
        got, stats, _ = _trajectory(x, y0, 8, prune="hamerly",
                                    chunk_bytes=32 << 10, inject_seed=3)
        ref, _, _ = _trajectory(x, y0, 8, prune="off",
                                chunk_bytes=32 << 10, inject_seed=3)
        assert_trajectories_equal(got, ref)


class TestBoundsProtection:
    """The bounds' own protection story: an SEU in the pruning metadata
    (bound arrays, stored anchor, cached labels/best) is caught by the
    fingerprint check, heals via a fully-active round, and never moves
    an output bit."""

    @pytest.mark.parametrize("target", ["lb", "prev_y", "labels", "best"])
    def test_metadata_flip_heals_bit_exact(self, blob_data, target):
        x, y0 = blob_data

        def mutate(it, eng):
            if it != 4:                     # deep in the pruned regime
                return
            b = eng._cache.bounds
            if target == "lb":
                b.lb.reshape(-1)[7] = flip_bit(b.lb.reshape(-1)[7], 51)
            elif target == "prev_y":
                b.prev_y[1, 2] = flip_bit(b.prev_y[1, 2], 30)
            elif target == "labels":
                eng._cache.labels[11] ^= 1
            else:
                eng._cache.best[11] = flip_bit(eng._cache.best[11], 23)

        got, stats, bounds = _trajectory(x, y0, 8, prune="hamerly",
                                         mutate=mutate)
        ref, _, _ = _trajectory(x, y0, 8, prune="off")
        assert_trajectories_equal(got, ref)
        assert stats.bounds_rebuilds == 1
        assert bounds.rebuilds == 1

    def test_flip_in_elkan_bound_matrix_heals(self, blob_data):
        x, y0 = blob_data

        def mutate(it, eng):
            if it == 5:
                b = eng._cache.bounds
                b.lb[3, 2] = flip_bit(b.lb[3, 2], 40)

        got, stats, _ = _trajectory(x, y0, 8, prune="elkan",
                                    mutate=mutate)
        ref, _, _ = _trajectory(x, y0, 8, prune="off")
        assert_trajectories_equal(got, ref)
        assert stats.bounds_rebuilds == 1

    def test_clean_run_never_rebuilds(self, blob_data):
        x, y0 = blob_data
        _, stats, bounds = _trajectory(x, y0, 8, prune="hamerly")
        assert stats.bounds_rebuilds == 0
        assert bounds.rebuilds == 0


class TestTransientPasses:
    """predict/score-style passes run on transient caches: they never
    consult or corrupt the fit's bounds state."""

    def test_interleaved_predict_pass_is_inert(self, blob_data):
        x, y0 = blob_data
        x2, _ = _blobs(9, m=640, k=K, d=D)
        eng = FastPathEngine(None, np.float32, tf32=True, prune="hamerly")
        ref_eng = FastPathEngine(None, np.float32, tf32=True, prune="off")
        try:
            eng.begin_fit(x, K)
            ref_eng.begin_fit(x, K)
            y = y0.copy()
            for it in range(8):
                labels, best = eng.assign(x, y, PerfCounters())
                rl, rb = ref_eng.assign(x, y, PerfCounters())
                assert np.array_equal(labels, rl)
                assert np.array_equal(best.view(np.uint32),
                                      rb.view(np.uint32))
                if it == 4:
                    # an interleaved pass on foreign data, mid-fit
                    pl, pb = eng.assign(x2, y, PerfCounters())
                    ql, qb = ref_eng.assign(x2, y, PerfCounters())
                    assert np.array_equal(pl, ql)
                    assert np.array_equal(pb.view(np.uint32),
                                          qb.view(np.uint32))
                y = _lloyd_step(x, labels.copy(), y)
            assert eng.stats.rows_pruned > 0
        finally:
            eng.end_fit()
            ref_eng.end_fit()


class TestShiftsFeed:
    """The update stage's per-centroid shift vector is bit-identical to
    the bounds' self-computed one, and a stale feed is dropped."""

    def test_update_shifts_match_bounds_expression(self, blob_data):
        x, y0 = blob_data
        rng = np.random.default_rng(1)
        labels = rng.integers(0, K, size=len(x))
        stage = UpdateStage(KMeansConfig(n_clusters=K).device, np.float32,
                            dmr=False)
        upd = stage.update(x, labels, np.zeros(len(x), np.float32),
                           y0, PerfCounters())
        expect = BoundsState._shifts_from(y0, upd.centroids)
        assert upd.shifts.dtype == np.float64
        assert np.array_equal(upd.shifts.view(np.uint64),
                              expect.view(np.uint64))

    def test_fed_and_self_computed_prune_identically(self, blob_data):
        x, y0 = blob_data

        def run(feed):
            eng = FastPathEngine(None, np.float32, tf32=True,
                                 prune="hamerly")
            out = []
            try:
                eng.begin_fit(x, K)
                y = y0.copy()
                for _ in range(8):
                    labels, best = eng.assign(x, y, PerfCounters())
                    out.append((labels.copy(),
                                best.view(np.uint32).copy(),
                                eng.stats.last_active_frac))
                    prev, y = y, _lloyd_step(x, labels, y)
                    if feed:
                        eng.feed_centroid_shifts(
                            BoundsState._shifts_from(prev, y), y)
                return out, eng.stats.rows_pruned
            finally:
                eng.end_fit()

        fed, fed_pruned = run(True)
        self_c, self_pruned = run(False)
        for a, b in zip(fed, self_c):
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
            assert a[2] == b[2]             # identical active sets
        assert fed_pruned == self_pruned > 0

    def test_stale_feed_is_dropped(self, blob_data):
        # a feed keyed to an array that never reaches assign() must not
        # poison the bounds: the next pass self-recomputes
        x, y0 = blob_data
        eng = FastPathEngine(None, np.float32, tf32=True, prune="hamerly")
        try:
            eng.begin_fit(x, K)
            y = y0.copy()
            ref, _, _ = _trajectory(x, y0, 6, prune="off")
            for it in range(6):
                # nonsense shifts keyed to a throwaway array
                eng.feed_centroid_shifts(np.zeros(K), np.empty_like(y))
                labels, best = eng.assign(x, y, PerfCounters())
                assert np.array_equal(labels, ref[it]["labels"])
                assert np.array_equal(best.view(np.uint32),
                                      ref[it]["best_bits"])
                y = _lloyd_step(x, labels.copy(), y)
        finally:
            eng.end_fit()


class _TripAfter:
    """Cancellation token that trips after ``n`` is_set() polls."""

    def __init__(self, n):
        self.n = n
        self.polls = 0

    def is_set(self):
        self.polls += 1
        return self.polls > self.n


class TestCancellation:
    """The engine checks its cancellation token at every chunk
    boundary: a cancelled pass stops within one chunk and the aborted
    round's half-written state heals on the next pass."""

    def test_cancel_stops_within_one_chunk(self, blob_data):
        x, y0 = blob_data
        eng = FastPathEngine(None, np.float32, tf32=True,
                             chunk_bytes=8 << 10)   # many chunks
        try:
            eng.begin_fit(x, K)
            n_chunks = len(eng._cache.chunks)
            assert n_chunks > 4
            token = _TripAfter(3)
            eng.cancel_token = token
            with pytest.raises(EngineCancelled):
                eng.assign(x, y0, PerfCounters())
            # polled once per chunk: tripped on the 4th poll, so at
            # most 3 chunks ran
            assert token.polls == 4
            assert eng.stats.gemm_calls <= 3 * max(
                1, (eng._cache.chunks[0][1] + eng.unit_rows - 1)
                // eng.unit_rows)
        finally:
            eng.end_fit()

    def test_aborted_pass_heals_and_stays_exact(self, blob_data):
        x, y0 = blob_data
        eng = FastPathEngine(None, np.float32, tf32=True,
                             chunk_bytes=8 << 10, prune="hamerly")
        ref, _, _ = _trajectory(x, y0, 6, prune="off",
                                chunk_bytes=8 << 10)
        try:
            eng.begin_fit(x, K)
            y = y0.copy()
            for it in range(6):
                if it == 1:
                    # cancelled while rows are still active: the pass
                    # half-overwrites labels/best, so the stale
                    # fingerprint must force a fully-active heal
                    eng.cancel_token = _TripAfter(2)
                    with pytest.raises(EngineCancelled):
                        eng.assign(x, y, PerfCounters())
                    eng.cancel_token = None
                labels, best = eng.assign(x, y, PerfCounters())
                assert np.array_equal(labels, ref[it]["labels"])
                assert np.array_equal(best.view(np.uint32),
                                      ref[it]["best_bits"])
                y = _lloyd_step(x, labels.copy(), y)
            assert eng.stats.bounds_rebuilds >= 1
        finally:
            eng.end_fit()

    def test_threaded_workers_observe_token(self, blob_data):
        x, y0 = blob_data
        eng = FastPathEngine(None, np.float32, tf32=True,
                             chunk_bytes=8 << 10, workers=3)
        try:
            eng.begin_fit(x, K)
            eng.cancel_token = _TripAfter(0)    # tripped from the start
            with pytest.raises(EngineCancelled):
                eng.assign(x, y0, PerfCounters())
        finally:
            eng.cancel_token = None
            eng.end_fit()
