"""Tests for the streamed centroid update and the online estimator.

Contracts under test:

* the streamed (bincount-continuation) accumulation is bit-identical to
  the seed one-shot ``np.add.at`` pass for every feed granularity,
  dtype, and variant — with and without SEU injection, chunked, fused,
  and threaded;
* ``partial_fit`` converges on synthetic blobs, is deterministic under
  a fixed seed, re-seeds empty clusters deterministically, and routes
  fault injection / ABFT through every variant per batch;
* ``batch_size`` switches ``fit`` to mini-batch K-means with the same
  guarantees.
"""

import numpy as np
import pytest

from repro.core.accumulate import (
    StreamedAccumulator,
    accumulate_oneshot,
    accumulate_streamed,
)
from repro.core.api import FTKMeans
from repro.core.config import KMeansConfig, VARIANT_NAMES
from repro.core.convergence import EwaInertiaMonitor
from repro.core.engine import FastPathEngine
from repro.core.tensorop import default_tensorop_tile
from repro.core.update import UpdateStage
from repro.core.variants import build_assignment
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB

#: forces several engine chunks at the shapes below (unit = 256 rows)
TINY_BUDGET = 256 * 10 * 4


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    x = rng.standard_normal((700, 24)).astype(np.float32)
    y = rng.standard_normal((10, 24)).astype(np.float32)
    return x, y


class TestAccumulatorBitExact:
    @pytest.mark.parametrize("dt", [np.float32, np.float64])
    def test_streamed_matches_oneshot_any_feed_size(self, dt):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1111, 17)).astype(dt)
        labels = rng.integers(0, 7, 1111)
        ref = accumulate_oneshot(x, labels, 7)
        for feed_rows in (1, 13, 256, 1111, 99999):
            got = accumulate_streamed(x, labels, 7, feed_rows=feed_rows)
            assert np.array_equal(ref, got), feed_rows

    def test_incremental_feeds_continue_exactly(self):
        """Feeding two streams back-to-back equals one concatenated
        pass — the property partial_fit's running counts rely on."""
        rng = np.random.default_rng(4)
        xa = rng.standard_normal((301, 8)).astype(np.float32)
        xb = rng.standard_normal((417, 8)).astype(np.float32)
        la = rng.integers(0, 5, 301)
        lb = rng.integers(0, 5, 417)
        acc = StreamedAccumulator(5, 8)
        acc.feed(xa, la)
        acc.feed(xb, lb)
        ref = accumulate_oneshot(np.concatenate([xa, xb]),
                                 np.concatenate([la, lb]), 5)
        assert np.array_equal(acc.packed(), ref)

    def test_oversized_feed_subchunks_invisibly(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((40_000, 6)).astype(np.float32)
        labels = rng.integers(0, 4, 40_000)
        acc = StreamedAccumulator(4, 6)
        acc.feed(x, labels)  # > FEED_ROWS: split internally
        assert np.array_equal(acc.packed(), accumulate_oneshot(x, labels, 4))

    def test_reset_clears_state(self):
        acc = StreamedAccumulator(3, 2)
        acc.feed(np.ones((5, 2), np.float32), np.zeros(5, np.int64))
        acc.reset()
        assert acc.samples_seen == 0
        assert np.all(acc.packed() == 0)

    def test_empty_feed_is_noop(self):
        acc = StreamedAccumulator(3, 2)
        acc.feed(np.empty((0, 2), np.float32), np.empty(0, np.int64))
        assert acc.samples_seen == 0

    def test_counts_and_sums_views(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((50, 3)).astype(np.float64)
        labels = rng.integers(0, 4, 50)
        acc = StreamedAccumulator(4, 3)
        acc.feed(x, labels)
        np.testing.assert_array_equal(
            acc.counts, np.bincount(labels, minlength=4).astype(np.float64))
        assert acc.sums.shape == (4, 3)


class TestFusedEngineAccumulation:
    def test_fused_equals_oneshot_chunked(self, data):
        x, y = data
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32),
                             tf32=True, chunk_bytes=TINY_BUDGET)
        acc = StreamedAccumulator(y.shape[0], x.shape[1])
        labels, _ = eng.assign(x, y, PerfCounters(), accumulator=acc)
        assert eng.stats.update_chunks_fed > 1  # genuinely fused per chunk
        assert np.array_equal(acc.packed(),
                              accumulate_oneshot(x, labels, y.shape[0]))

    def test_alloc_hook_sees_every_accumulator_allocation(self, data):
        """The engine attaches its tracker at the first fused assign;
        allocations predating the attachment (the sums from __init__)
        are replayed so accounting never undercounts."""
        x, y = data
        allocs: list[tuple[str, int]] = []
        eng = FastPathEngine(None, np.float32,
                             tile=default_tensorop_tile(np.float32),
                             tf32=True, chunk_bytes=TINY_BUDGET,
                             alloc_hook=lambda n, b: allocs.append((n, b)))
        acc = StreamedAccumulator(y.shape[0], x.shape[1])
        eng.assign(x, y, PerfCounters(), accumulator=acc)
        names = {n for n, _ in allocs}
        assert "accumulator_sums" in names
        assert "accumulator_staging" in names
        sums_bytes = sum(b for n, b in allocs if n == "accumulator_sums")
        assert sums_bytes >= acc.sums.nbytes

    def test_staging_bounded_for_wide_features(self):
        """Sub-feed rows scale down with the feature count so the
        float64 transpose staging stays under STAGING_BYTES."""
        from repro.core.accumulate import MIN_FEED_ROWS, STAGING_BYTES

        acc = StreamedAccumulator(4, 2048)
        assert (acc.feed_rows == MIN_FEED_ROWS
                or acc.feed_rows * 2048 * 8 <= STAGING_BYTES)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3000, 2048)).astype(np.float32)
        labels = rng.integers(0, 4, 3000)
        acc.feed(x, labels)
        assert np.array_equal(acc.packed(), accumulate_oneshot(x, labels, 4))

    def test_threaded_in_order_commit_bit_identical(self, data):
        """Worker threads overlap the GEMMs but commit feeds in chunk
        order: the accumulated bits cannot depend on ``workers``."""
        x, y = data
        packed = []
        for workers in (1, 3):
            eng = FastPathEngine(None, np.float32,
                                 tile=default_tensorop_tile(np.float32),
                                 tf32=True, chunk_bytes=TINY_BUDGET * 2,
                                 workers=workers)
            eng.begin_fit(x, y.shape[0])
            acc = StreamedAccumulator(y.shape[0], x.shape[1])
            eng.assign(x, y, PerfCounters(), accumulator=acc)
            eng.end_fit()
            packed.append(acc.packed())
        assert np.array_equal(packed[0], packed[1])

    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_variant_assign_feeds_accumulator(self, data, variant):
        """Every variant's assign() routes the accumulator through, in
        both execution modes, and the sums bit-match one-shot."""
        x, y = data
        for mode in ("fast", "functional"):
            cfg = KMeansConfig(n_clusters=10, variant=variant, mode=mode,
                               chunk_bytes=TINY_BUDGET)
            kern = build_assignment(cfg, *x.shape, np.random.default_rng(0))
            acc = StreamedAccumulator(10, x.shape[1])
            res = kern.assign(x, y, accumulator=acc)
            assert np.array_equal(
                acc.packed(), accumulate_oneshot(x, res.labels, 10)), mode


class TestFitStreamedEqualsOneshot:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_full_fit_bit_identical(self, data, variant):
        """The acceptance claim: streamed update produces bit-identical
        centroids and inertia to the seed one-shot path, per variant."""
        x, _ = data
        fits = {}
        for um in ("oneshot", "streamed"):
            fits[um] = FTKMeans(n_clusters=6, seed=0, variant=variant,
                                max_iter=8, update_mode=um,
                                chunk_bytes=TINY_BUDGET).fit(x)
        a, b = fits["oneshot"], fits["streamed"]
        assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
        assert np.array_equal(a.labels_, b.labels_)
        assert a.inertia_ == b.inertia_
        assert a.inertia_history_ == b.inertia_history_

    @pytest.mark.parametrize("variant", ["v1", "v3", "tensorop", "ft"])
    def test_full_fit_bit_identical_under_injection(self, data, variant):
        """Same claim with SEU injection: a fixed seed draws identical
        fault plans, so the streamed path sees identical labels and
        produces identical sums."""
        x, _ = data
        fits = []
        for um in ("oneshot", "streamed"):
            fits.append(FTKMeans(n_clusters=6, seed=7, variant=variant,
                                 max_iter=6, p_inject=0.8, update_mode=um,
                                 chunk_bytes=TINY_BUDGET).fit(x))
        a, b = fits
        assert a.counters_.errors_injected == b.counters_.errors_injected
        assert a.counters_.errors_injected > 0
        assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
        assert a.inertia_ == b.inertia_

    def test_workers_do_not_move_fit_bits(self, data):
        x, _ = data
        base = FTKMeans(n_clusters=6, seed=0, max_iter=8,
                        update_mode="streamed",
                        chunk_bytes=TINY_BUDGET).fit(x)
        threaded = FTKMeans(n_clusters=6, seed=0, max_iter=8,
                            update_mode="streamed",
                            chunk_bytes=TINY_BUDGET, engine_workers=3).fit(x)
        assert np.array_equal(base.cluster_centers_,
                              threaded.cluster_centers_)
        assert base.inertia_ == threaded.inertia_

    def test_auto_resolves_per_mode(self):
        assert KMeansConfig(update_mode="auto",
                            mode="fast").resolved_update_mode() == "streamed"
        assert KMeansConfig(update_mode="auto",
                            mode="functional").resolved_update_mode() == "oneshot"
        assert KMeansConfig(update_mode="oneshot",
                            mode="fast").resolved_update_mode() == "oneshot"

    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            KMeansConfig(update_mode="bogus")
        with pytest.raises(ValueError):
            KMeansConfig(batch_size=0)
        with pytest.raises(ValueError):
            UpdateStage(A100_PCIE_40GB, np.float32, update_mode="bogus")


class TestUpdateStageFused:
    def test_dmr_duplicate_verifies_fused_sums(self, data):
        """The fused pass is DMR replica 1; the duplicate re-accumulates
        and must agree bit-for-bit."""
        x, y = data
        labels = np.random.default_rng(0).integers(0, 10, x.shape[0])
        c = PerfCounters()
        stage = UpdateStage(A100_PCIE_40GB, np.float32, dmr=True,
                            update_mode="streamed")
        fused = accumulate_streamed(x, labels, 10)
        res = stage.update(x, labels, np.zeros(x.shape[0]), y, c,
                           fused_sums=fused)
        assert c.dmr_checks == 1 and c.dmr_mismatches == 0
        ref = UpdateStage(A100_PCIE_40GB, np.float32, dmr=False).update(
            x, labels, np.zeros(x.shape[0]), y, PerfCounters())
        assert np.array_equal(res.centroids, ref.centroids)

    def test_dmr_detects_corrupted_fused_replica(self, data):
        """An SEU in the fused replica is caught by the duplicate and
        recovered by recomputation — seed DMR semantics."""
        x, y = data
        labels = np.random.default_rng(0).integers(0, 10, x.shape[0])
        c = PerfCounters()

        def corrupt(arr):
            arr.reshape(-1)[3] += 1e6

        stage = UpdateStage(A100_PCIE_40GB, np.float32, dmr=True,
                            update_mode="streamed", corrupt_hook=corrupt)
        fused = accumulate_streamed(x, labels, 10)
        res = stage.update(x, labels, np.zeros(x.shape[0]), y, c,
                           fused_sums=fused)
        assert c.dmr_mismatches == 1 and c.errors_detected == 1
        ref = UpdateStage(A100_PCIE_40GB, np.float32, dmr=False).update(
            x, labels, np.zeros(x.shape[0]), y, PerfCounters())
        assert np.array_equal(res.centroids, ref.centroids)


class TestPartialFit:
    def _blob_batches(self, n_batches, batch, seed=0):
        from repro.data.synthetic import gaussian_blobs

        x, _, _ = gaussian_blobs(n_batches * batch, 16, 5, np.float32,
                                 seed=seed)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(x.shape[0])
        return [x[perm[i * batch:(i + 1) * batch]]
                for i in range(n_batches)]

    def test_converges_on_blobs(self):
        from repro.core.initializers import initialize

        batches = self._blob_batches(40, 150)
        full_x = np.concatenate(batches)
        # shared starting centroids: the comparison below then measures
        # the online mechanism, not k-means++ draw luck (these blobs
        # have well-separated local minima)
        init = initialize(full_x, 5, "k-means++", np.random.default_rng(0))
        km = FTKMeans(n_clusters=5, seed=0, tol=1e-3, init_centroids=init)
        for b in batches:
            km.partial_fit(b)
            if km.converged_:
                break
        assert km.converged_
        # the online model clusters the stream about as well as a
        # full-batch fit from the same init (inertia within a modest
        # factor)
        full = FTKMeans(n_clusters=5, seed=0, init_centroids=init).fit(full_x)
        assert -km.score(full_x) < 1.5 * full.inertia_

    def test_deterministic_under_fixed_seed(self):
        batches = self._blob_batches(10, 120)
        runs = []
        for _ in range(2):
            km = FTKMeans(n_clusters=5, seed=3)
            for b in batches:
                km.partial_fit(b)
            runs.append(km)
        assert np.array_equal(runs[0].cluster_centers_,
                              runs[1].cluster_centers_)
        assert np.array_equal(runs[0].labels_, runs[1].labels_)
        assert runs[0].inertia_ == runs[1].inertia_

    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_all_variants_both_modes(self, variant):
        batches = self._blob_batches(3, 100)
        for mode in ("fast", "functional"):
            km = FTKMeans(n_clusters=4, seed=0, variant=variant, mode=mode)
            for b in batches:
                km.partial_fit(b)
            assert km.n_batches_seen_ == 3
            assert km.cluster_centers_.shape == (4, 16)
            assert np.isfinite(km.inertia_)

    def test_injection_routed_per_batch(self):
        """Fault injection + ABFT apply to every mini-batch, and the
        corrected stream matches the clean one."""
        batches = self._blob_batches(6, 120)
        noisy = FTKMeans(n_clusters=4, seed=0, variant="ft", p_inject=0.7)
        clean = FTKMeans(n_clusters=4, seed=0, variant="ft")
        for b in batches:
            noisy.partial_fit(b)
            clean.partial_fit(b)
        assert noisy.counters_.errors_injected > 0
        assert np.array_equal(noisy.labels_, clean.labels_)
        assert np.array_equal(noisy.cluster_centers_, clean.cluster_centers_)

    def test_empty_cluster_reassigned_deterministically(self):
        """A cluster that never receives a sample is re-seeded from the
        batch's worst-fit points, identically across runs."""
        rng = np.random.default_rng(0)
        base = rng.standard_normal((60, 4)).astype(np.float32)
        far = np.full((4, 4), 40.0, np.float32)  # unreachable centroid
        init = np.vstack([base[:3], far[:1]]).astype(np.float32)
        batch = base  # nothing near `far`: cluster 3 stays empty
        runs = []
        for _ in range(2):
            km = FTKMeans(n_clusters=4, seed=1, init_centroids=init.copy())
            km.partial_fit(batch)
            runs.append(km.cluster_centers_.copy())
            assert km.cluster_counts_[3] >= 1  # re-seeded, not dead
        assert np.array_equal(runs[0], runs[1])
        # the re-seed donor is the batch's worst-fit sample
        d = ((batch[:, None, :].astype(np.float64)
              - init[None, :3, :].astype(np.float64)) ** 2).sum(-1)
        worst = int(np.argmax(d.min(axis=1)))
        np.testing.assert_array_equal(runs[0][3], batch[worst])

    def test_first_batch_too_small_raises(self):
        km = FTKMeans(n_clusters=10, seed=0)
        with pytest.raises(ValueError, match="n_clusters"):
            km.partial_fit(np.ones((4, 3), np.float32))

    def test_feature_mismatch_raises(self):
        km = FTKMeans(n_clusters=2, seed=0)
        km.partial_fit(np.random.default_rng(0)
                       .standard_normal((20, 4)).astype(np.float32))
        with pytest.raises(ValueError, match="features"):
            km.partial_fit(np.ones((20, 3), np.float32))

    def test_warm_start_from_fitted_model(self, data):
        """partial_fit after fit continues from the fitted centroids."""
        x, _ = data
        km = FTKMeans(n_clusters=6, seed=0, max_iter=8).fit(x)
        centers = km.cluster_centers_.copy()
        counts = km.cluster_counts_.copy()
        km.partial_fit(x[:100])
        assert km.n_batches_seen_ == 1
        # decayed update: fitted counts damp the batch's pull
        assert not np.array_equal(km.cluster_centers_, centers)
        assert np.all(km.cluster_counts_ >= counts)

    def test_predict_and_score_work_after_partial_fit(self):
        batches = self._blob_batches(3, 100)
        km = FTKMeans(n_clusters=4, seed=0)
        for b in batches:
            km.partial_fit(b)
        pred = km.predict(batches[0])
        assert pred.shape == (100,)
        assert np.isfinite(km.score(batches[0]))

    def test_inertia_history_units_match_inertia(self):
        """Online history stores absolute batch inertias (same units as
        ``inertia_``); the per-sample smoothed view is ewa_inertia_."""
        batches = self._blob_batches(4, 100)
        km = FTKMeans(n_clusters=4, seed=0)
        for b in batches:
            km.partial_fit(b)
        assert km.inertia_history_[-1] == km.inertia_
        assert len(km.inertia_history_) == 4
        assert km.ewa_inertia_ < km.inertia_  # per-sample vs absolute

    def test_full_fit_clears_stale_online_attributes(self):
        """fit() after a partial_fit stream must not leave the dead
        stream's converged_/n_batches_seen_/ewa_inertia_ readable."""
        batches = self._blob_batches(3, 100)
        km = FTKMeans(n_clusters=4, seed=0, max_iter=5)
        for b in batches:
            km.partial_fit(b)
        km.fit(np.concatenate(batches))
        for attr in ("converged_", "n_batches_seen_", "ewa_inertia_"):
            assert not hasattr(km, attr), attr

    def test_accumulator_pooled_across_batches(self):
        """The online step reuses one accumulator (reset per batch)
        instead of reallocating sums/staging every call."""
        batches = self._blob_batches(3, 100)
        km = FTKMeans(n_clusters=4, seed=0)
        km.partial_fit(batches[0])
        acc = km._online_state["accumulator"]
        assert acc is not None
        km.partial_fit(batches[1])
        assert km._online_state["accumulator"] is acc
        assert acc.samples_seen == 100  # reset per batch, then one feed

    def test_distance_gflops_uses_streamed_sample_total(self):
        """The paper metric sums per-batch work, not last-batch-size x
        batch count."""
        from repro.gemm.shapes import distance_flops

        batches = self._blob_batches(4, 100)
        km = FTKMeans(n_clusters=4, seed=0)
        for b in batches:
            km.partial_fit(b)
        km.partial_fit(batches[0][:10])  # tiny final batch
        expect = distance_flops(410, 4, 16) / km.assignment_time_s_ / 1e9
        assert km.distance_gflops_() == pytest.approx(expect)


class TestMinibatchFit:
    def test_fit_with_batch_size(self, data):
        x, _ = data
        km = FTKMeans(n_clusters=6, seed=0, batch_size=128,
                      max_iter=15).fit(x)
        assert km.labels_.shape == (x.shape[0],)
        assert km.n_batches_seen_ >= 1
        assert km.n_iter_ >= 1
        # quality sanity: within a modest factor of full-batch Lloyd
        full = FTKMeans(n_clusters=6, seed=0).fit(x)
        assert km.inertia_ < 2.0 * full.inertia_

    def test_deterministic(self, data):
        x, _ = data
        a = FTKMeans(n_clusters=6, seed=2, batch_size=100, max_iter=6).fit(x)
        b = FTKMeans(n_clusters=6, seed=2, batch_size=100, max_iter=6).fit(x)
        assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
        assert a.inertia_ == b.inertia_

    def test_full_fit_resets_online_state(self, data):
        """fit() after partial_fit starts fresh (sklearn semantics)."""
        x, _ = data
        km = FTKMeans(n_clusters=6, seed=0, max_iter=8)
        km.partial_fit(x[:100])
        km.fit(x)
        ref = FTKMeans(n_clusters=6, seed=0, max_iter=8).fit(x)
        assert np.array_equal(km.cluster_centers_, ref.cluster_centers_)


class TestEwaMonitor:
    def test_needs_patience_consecutive_stalls(self):
        mon = EwaInertiaMonitor(tol=1e-3, alpha=0.5, patience=2)
        assert not mon.update(100.0, 10)   # first batch: baseline
        assert not mon.update(100.0, 10)   # stall 1
        assert mon.update(100.0, 10)       # stall 2 -> converged

    def test_improvement_resets_patience(self):
        mon = EwaInertiaMonitor(tol=1e-3, alpha=1.0, patience=2)
        assert not mon.update(100.0, 10)
        assert not mon.update(100.0, 10)   # stall 1
        assert not mon.update(50.0, 10)    # big improvement: reset
        assert not mon.update(50.0, 10)    # stall 1 again
        assert mon.update(50.0, 10)        # stall 2

    def test_normalises_by_batch_size(self):
        mon = EwaInertiaMonitor(tol=0.0, alpha=1.0, patience=1)
        mon.update(100.0, 10)
        assert mon.ewa == pytest.approx(10.0)
        mon.update(300.0, 30)  # same per-sample inertia
        assert mon.ewa == pytest.approx(10.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            EwaInertiaMonitor(tol=1e-3, alpha=0.0)
        with pytest.raises(ValueError):
            EwaInertiaMonitor(tol=1e-3, patience=0)
        mon = EwaInertiaMonitor(tol=1e-3)
        with pytest.raises(ValueError):
            mon.update(float("inf"), 10)
        with pytest.raises(ValueError):
            mon.update(1.0, 0)
