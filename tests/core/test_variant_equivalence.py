"""Cross-variant equivalence: every kernel mapping (naive, V1-V3,
tensorop, FT) must produce the same clustering; fast mode must match
functional mode."""

import numpy as np
import pytest

from repro.core.api import FTKMeans
from repro.core.variants import VARIANTS, build_assignment
from repro.core.config import KMeansConfig
from repro.gemm.reference import reference_assignment


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((300, 24)).astype(np.float32)
    y = rng.standard_normal((10, 24)).astype(np.float32)
    return x, y


class TestAssignmentEquivalence:
    @pytest.mark.parametrize("variant", ["naive", "v1", "v2", "v3"])
    def test_fullprec_variants_match_reference(self, data, variant):
        x, y = data
        cfg = KMeansConfig(n_clusters=10, variant=variant, mode="functional")
        kern = build_assignment(cfg, x.shape[0], x.shape[1],
                                np.random.default_rng(0))
        res = kern.assign(x, y)
        ref, _ = reference_assignment(x, y)
        assert np.array_equal(res.labels, ref)

    @pytest.mark.parametrize("variant", ["tensorop", "ft"])
    def test_tf32_variants_match_tf32_reference(self, data, variant):
        x, y = data
        cfg = KMeansConfig(n_clusters=10, variant=variant, mode="functional")
        kern = build_assignment(cfg, x.shape[0], x.shape[1],
                                np.random.default_rng(0))
        res = kern.assign(x, y)
        ref, _ = reference_assignment(x, y, tf32=True)
        assert np.array_equal(res.labels, ref)

    @pytest.mark.parametrize("variant", ["v1", "v2", "v3", "tensorop", "ft"])
    def test_fast_equals_functional(self, data, variant):
        x, y = data
        results = {}
        for mode in ("fast", "functional"):
            cfg = KMeansConfig(n_clusters=10, variant=variant, mode=mode)
            kern = build_assignment(cfg, x.shape[0], x.shape[1],
                                    np.random.default_rng(0))
            results[mode] = kern.assign(x, y).labels
        assert np.array_equal(results["fast"], results["functional"])

    def test_min_distances_nonnegative_and_consistent(self, data):
        x, y = data
        cfg = KMeansConfig(n_clusters=10, variant="v3", mode="functional")
        kern = build_assignment(cfg, x.shape[0], x.shape[1],
                                np.random.default_rng(0))
        res = kern.assign(x, y)
        _, ref_best = reference_assignment(x, y)
        np.testing.assert_allclose(res.min_sqdist, ref_best, rtol=1e-4,
                                   atol=1e-4)

    def test_timings_attached(self, data):
        x, y = data
        cfg = KMeansConfig(n_clusters=10, variant="tensorop")
        kern = build_assignment(cfg, x.shape[0], x.shape[1],
                                np.random.default_rng(0))
        res = kern.assign(x, y)
        assert res.sim_time_s > 0
        assert any("distance" in name for name, _ in res.timings)


class TestVariantRegistry:
    def test_all_names_registered(self):
        assert set(VARIANTS) == {"naive", "v1", "v2", "v3", "tensorop", "ft"}

    def test_tile_auto_uses_selector(self):
        cfg = KMeansConfig(n_clusters=8, variant="tensorop", tile="auto")
        kern = build_assignment(cfg, 4096, 32, np.random.default_rng(0))
        assert kern.tile is not None

    def test_bad_tile_value(self):
        cfg = KMeansConfig(n_clusters=8, variant="tensorop")
        cfg.tile = "best"
        with pytest.raises(ValueError):
            build_assignment(cfg, 128, 16, np.random.default_rng(0))


class TestEndToEndVariants:
    def test_all_variants_same_clustering_on_blobs(self, blobs):
        """Well-separated blobs: every variant lands the same partition."""
        x, _, _ = blobs
        base = None
        for variant in ("naive", "v1", "v2", "v3", "tensorop", "ft"):
            km = FTKMeans(n_clusters=5, variant=variant, seed=3,
                          max_iter=30).fit(x)
            if base is None:
                base = km.labels_
            else:
                # identical partitions (same seed, deterministic path)
                assert np.array_equal(km.labels_, base), variant

    def test_inertia_monotone_over_iterations(self, blobs):
        x, _, _ = blobs
        km = FTKMeans(n_clusters=5, variant="v3", seed=0, max_iter=30,
                      tol=0.0).fit(x)
        h = np.array(km.inertia_history_)
        assert np.all(np.diff(h) <= 1e-3 * h[:-1])  # non-increasing
