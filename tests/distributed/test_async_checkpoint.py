"""Async checkpoint writer: flush barriers, crash consistency, recovery.

The contract: moving the write+fsync off the round loop changes *when*
a snapshot becomes durable, never *what* a reader can observe — every
read flushes first, every write keeps the atomic tmp+fsync+replace
protocol, and a process killed mid-stream leaves only complete,
restorable checkpoint files behind.
"""

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.api import FTKMeans
from repro.dist.checkpoint import CheckpointStore
from repro.dist.faults import WorkerFaultInjector


def _state(i, size=64):
    return {"iteration": i, "y": np.full(size, float(i))}


class TestAsyncStore:
    def test_directory_store_defaults_async(self, tmp_path):
        assert CheckpointStore(tmp_path).sync is False
        assert CheckpointStore(tmp_path, sync=True).sync is True
        assert CheckpointStore().sync is True  # in-memory: nothing to hide

    def test_reads_flush_the_writer(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for i in range(5):
            store.save(i, _state(i))
        # iterations/load_latest block on the barrier, so every
        # completed save is visible and pruned to `keep`
        assert store.iterations == [2, 3, 4]
        it, state = store.load_latest()
        assert it == 4
        np.testing.assert_array_equal(state["y"], np.full(64, 4.0))

    def test_snapshot_consistent_at_save_time(self, tmp_path):
        """The caller may mutate the live state right after save():
        the blob was pickled before save returned."""
        store = CheckpointStore(tmp_path)
        live = _state(7)
        store.save(7, live)
        live["y"][:] = -1.0
        _, state = store.load_latest()
        np.testing.assert_array_equal(state["y"], np.full(64, 7.0))

    def test_clear_flushes_and_empties(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(3):
            store.save(i, _state(i))
        store.clear()
        assert store.iterations == []
        assert list(Path(tmp_path).glob("ckpt_*.pkl")) == []

    def test_write_error_surfaces(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, _state(0))
        store.flush()
        # make the next background write fail at replace time
        store.directory = Path(tmp_path) / "vanished"
        with pytest.raises(OSError):
            store.save(1, _state(1))
            store.flush()

    def test_sync_mode_unchanged(self, tmp_path):
        store = CheckpointStore(tmp_path, sync=True)
        store.save(3, _state(3))
        # no barrier needed: the file is already there
        assert (Path(tmp_path) / "ckpt_00000003.pkl").exists()

    def test_save_flush_cycles_never_orphan_a_blob(self, tmp_path):
        """Each flush lets the writer drain and exit, so every next
        save lands exactly in the writer's dying window — the respawn
        decision must be made on the lock-guarded liveness flag, or a
        queued blob is orphaned and flush deadlocks."""
        import concurrent.futures

        store = CheckpointStore(tmp_path, keep=2)

        def hammer():
            for i in range(300):
                store.save(i, _state(i, size=4))
                store.flush()
            return store.iterations[-1]

        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            assert pool.submit(hammer).result(timeout=60) == 299


class TestCrashConsistency:
    def test_killed_writer_leaves_only_complete_checkpoints(self, tmp_path):
        """A process that async-saves and hard-exits mid-stream strands
        at most a tmp file: every surviving ckpt_*.pkl unpickles to a
        complete snapshot."""
        script = textwrap.dedent(f"""
            import os, numpy as np
            from repro.dist.checkpoint import CheckpointStore
            store = CheckpointStore({str(tmp_path)!r}, keep=10)
            # large states so the kill lands mid-write with high odds
            big = np.arange(2_000_000, dtype=np.float64)
            for i in range(8):
                store.save(i, {{"iteration": i, "y": big + i}})
            os._exit(0)   # no flush, no atexit: the writer dies mid-queue
        """)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        complete = 0
        for p in sorted(Path(tmp_path).glob("ckpt_*.pkl")):
            state = pickle.loads(p.read_bytes())  # must not raise
            i = state["iteration"]
            np.testing.assert_array_equal(
                state["y"], np.arange(2_000_000, dtype=np.float64) + i)
            complete += 1
        assert complete <= 8
        # a fresh store on the same directory restores cleanly (or sees
        # an empty store — both are consistent states)
        loaded = CheckpointStore(tmp_path).load_latest()
        if complete:
            assert loaded is not None

    def test_recovery_bit_exact_with_async_store(self, tmp_path):
        """Crash + restore through the async disk store lands on the
        clean fit's exact bits (the flush barrier guarantees the
        restore sees a durable snapshot)."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((700, 12)).astype(np.float32)

        def fit(faults=None, sync=False, directory=None):
            return FTKMeans(n_clusters=6, n_workers=2, executor="serial",
                            checkpoint_every=2, max_iter=6, tol=0.0,
                            seed=0, worker_faults=faults,
                            checkpoint_sync=sync,
                            checkpoint_dir=directory).fit(x)

        clean = fit()
        crashed = fit(faults=WorkerFaultInjector.crash_at(0, 4),
                      directory=tmp_path / "async")
        assert crashed.dist_recoveries_ == 1
        assert np.array_equal(clean.cluster_centers_,
                              crashed.cluster_centers_)
        assert np.array_equal(clean.labels_, crashed.labels_)
        sync = fit(faults=WorkerFaultInjector.crash_at(0, 4),
                   sync=True, directory=tmp_path / "sync")
        assert np.array_equal(clean.cluster_centers_,
                              sync.cluster_centers_)

    def test_checkpoint_overhead_attrs_populated(self, tmp_path):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((600, 8)).astype(np.float32)
        km = FTKMeans(n_clusters=4, n_workers=2, executor="serial",
                      checkpoint_every=1, max_iter=4, tol=0.0, seed=0,
                      checkpoint_dir=tmp_path).fit(x)
        assert km.dist_checkpoint_save_s_ > 0.0
        assert km.dist_checkpoint_flush_s_ >= 0.0
