"""Sharded fits: bit-identity, executors, fault directives, config."""

import numpy as np
import pytest

from repro import FTKMeans
from repro.dist import WorkerFaultInjector

M, N_FEATURES, K = 1537, 12, 7  # M deliberately not a GEMM-unit multiple


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)


def fit(x, **kw):
    base = dict(n_clusters=K, variant="tensorop", mode="fast", seed=3,
                max_iter=10)
    base.update(kw)
    return FTKMeans(**base).fit(x)


def assert_same_fit(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
    assert a.inertia_ == b.inertia_
    assert a.n_iter_ == b.n_iter_
    assert a.inertia_history_ == b.inertia_history_


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [2, 3, 5])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sharded_equals_single_worker(self, x, n_workers, executor):
        ref = fit(x)
        km = fit(x, n_workers=n_workers, executor=executor)
        assert_same_fit(km, ref)
        assert km.n_workers_ == n_workers
        assert km.dist_recoveries_ == 0

    def test_process_executor_bit_identical(self, x):
        ref = fit(x, max_iter=6)
        km = fit(x, max_iter=6, n_workers=2, executor="process")
        assert_same_fit(km, ref)

    @pytest.mark.parametrize("variant", ["v2", "ft"])
    def test_other_variants_bit_identical(self, x, variant):
        ref = fit(x, variant=variant, max_iter=5)
        km = fit(x, variant=variant, max_iter=5, n_workers=3)
        assert_same_fit(km, ref)

    def test_more_workers_than_units_clamps(self, x):
        ref = fit(x, max_iter=5)
        km = fit(x, max_iter=5, n_workers=64)   # M=1537 has few units
        assert_same_fit(km, ref)
        assert km.n_workers_ <= 64

    def test_predict_and_score_work_after_dist_fit(self, x):
        km = fit(x, n_workers=2)
        ref = fit(x)
        assert np.array_equal(km.predict(x[:100]), ref.predict(x[:100]))
        assert km.score(x) == pytest.approx(ref.score(x))


class TestWorkerFaults:
    def test_corrupt_partial_detected_and_contained(self, x):
        clean = fit(x, n_workers=3)
        km = fit(x, n_workers=3,
                 worker_faults=WorkerFaultInjector.corrupt_at(1, 2))
        # the merged sums are authoritative: the fit is unharmed ...
        assert_same_fit(km, clean)
        # ... and the corruption was injected, detected and localized
        assert km.counters_.errors_injected >= 1
        assert km.counters_.errors_detected >= 1
        assert km.counters_.errors_corrected >= 1
        events = [e for e in km.dist_trace_
                  if e["kind"] == "corrupt_partial_detected"]
        assert events and events[0]["worker"] == 1
        assert events[0]["iteration"] == 2

    def test_low_bit_corruption_escapes_threshold(self, x):
        # a flip in the lowest mantissa bits lands under the checksum
        # threshold: it escapes, mirroring sub-threshold SEU semantics
        km = fit(x, n_workers=2,
                 worker_faults=WorkerFaultInjector.corrupt_at(0, 1, bit=0))
        assert km.counters_.errors_injected == 1
        assert not [e for e in km.dist_trace_
                    if e["kind"] == "corrupt_partial_detected"]

    def test_stall_is_tolerated_and_counted(self, x):
        clean = fit(x, n_workers=2)
        km = fit(x, n_workers=2,
                 worker_faults=WorkerFaultInjector.stall_at(0, 2,
                                                            stall_s=0.01))
        assert_same_fit(km, clean)
        assert km.counters_.worker_stalls == 1
        assert [e for e in km.dist_trace_ if e["kind"] == "stall"]

    def test_random_faults_respect_max_faults(self, x):
        inj = WorkerFaultInjector(rng=0, p_corrupt=1.0, max_faults=2)
        km = fit(x, n_workers=2, worker_faults=inj)
        assert km.counters_.errors_injected == 2


class TestConfigSurface:
    def test_rejects_functional_mode(self):
        with pytest.raises(ValueError, match="mode='fast'"):
            FTKMeans(n_clusters=4, n_workers=2, mode="functional")

    def test_rejects_batch_size_combination(self):
        with pytest.raises(ValueError, match="full-batch"):
            FTKMeans(n_clusters=4, n_workers=2, batch_size=64)

    def test_partial_fit_rejects_sharding(self, x):
        km = FTKMeans(n_clusters=4, n_workers=2)
        with pytest.raises(ValueError, match="partial_fit"):
            km.partial_fit(x[:64])

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            FTKMeans(n_clusters=4, executor="mpi")

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError):
            FTKMeans(n_clusters=4, n_workers=0)
        with pytest.raises(ValueError):
            FTKMeans(n_clusters=4, checkpoint_every=-1)
