"""Failure detection + elastic membership: stalls are detected within
the round deadline, recovery shrinks onto the survivors, and every
membership history stays bit-identical to the single-worker fit."""

import numpy as np
import pytest

from repro import FTKMeans
from repro.core.config import KMeansConfig
from repro.dist import (
    Coordinator,
    ProcessExecutor,
    WorkerFaultInjector,
    WorkerFaultPlan,
    WorkerStall,
)
from repro.dist.faults import CRASH, STALL

M, N_FEATURES, K = 1537, 12, 7

#: generous vs. the ~ms rounds of this tiny shape, tiny vs. the sleeps
DEADLINE = 1.0


class _EchoWorker:
    """Minimal round protocol for executor-level tests."""

    def __init__(self, wid):
        self.wid = wid

    def run_round(self, y, iteration, directive):
        return ("ok", self.wid, iteration)

    def close(self):
        pass


def _echo_factory(wid):
    return _EchoWorker(wid)


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)


@pytest.fixture(scope="module")
def ref(x):
    return fit(x)


def fit(x, **kw):
    base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=10)
    base.update(kw)
    return FTKMeans(**base).fit(x)


def assert_same_fit(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
    assert a.inertia_ == b.inertia_
    assert a.n_iter_ == b.n_iter_
    assert a.inertia_history_ == b.inertia_history_


class TestStallDetection:
    """The bugfix: a stalled worker used to hang `run_round` forever."""

    def test_process_stall_completes_within_deadline_budget(self, x, ref):
        # the acceptance scenario: the worker sleeps 100x the deadline
        # (it would hang the old blocking recv() forever); the detector
        # terminates it and the fit completes, shrunk and bit-identical
        km = fit(x, n_workers=2, executor="process", checkpoint_every=2,
                 elastic=True, round_timeout=DEADLINE,
                 worker_faults=WorkerFaultInjector.stall_at(
                     0, 3, stall_s=100 * DEADLINE))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.dist_stall_recoveries_ == 1
        assert km.dist_shrinks_ == 1
        assert km.counters_.worker_stalls == 1
        assert km.counters_.worker_crashes == 0
        kinds = [e["kind"] for e in km.dist_trace_]
        assert kinds == ["stall_timeout", "restore", "shrink"]

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_in_process_backends_detect_stalls(self, x, ref, executor):
        # serial detects retroactively (no preemption), thread at the
        # future deadline — both classify, recover and stay bit-exact
        km = fit(x, n_workers=2, executor=executor, checkpoint_every=2,
                 elastic=True, round_timeout=0.1,
                 worker_faults=WorkerFaultInjector.stall_at(
                     1, 4, stall_s=0.5))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.counters_.worker_stalls == 1

    def test_thread_stall_does_not_block_recovery(self, x, ref):
        # the stalled thread cannot be killed, but recovery must not
        # join it either: the fit's wall time is bounded by detection,
        # not by the stall's duration (the thread is abandoned and
        # reclaimed when its sleep runs dry)
        import time

        t0 = time.perf_counter()
        km = fit(x, n_workers=2, executor="thread", checkpoint_every=2,
                 elastic=True, round_timeout=0.1,
                 worker_faults=WorkerFaultInjector.stall_at(
                     0, 3, stall_s=5.0))
        wall = time.perf_counter() - t0
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert wall < 4.0

    def test_non_elastic_stall_respawns_full_set(self, x, ref):
        km = fit(x, n_workers=2, executor="process", checkpoint_every=2,
                 round_timeout=DEADLINE,
                 worker_faults=WorkerFaultInjector.stall_at(
                     0, 3, stall_s=100 * DEADLINE))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 2          # stalled worker respawned
        assert km.dist_shrinks_ == 0
        assert km.counters_.worker_stalls == 1

    def test_sub_deadline_stall_is_a_tolerated_straggler(self, x, ref):
        km = fit(x, n_workers=2, round_timeout=5.0, elastic=True,
                 worker_faults=WorkerFaultInjector.stall_at(
                     1, 2, stall_s=0.001))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 2          # nothing was lost
        assert km.dist_recoveries_ == 0
        assert km.counters_.worker_stalls == 1   # counted, not escalated

    def test_stall_budget_exhaustion_raises_typed_worker_stall(self, x):
        cfg = KMeansConfig(n_clusters=K, n_workers=2, seed=3, max_iter=6,
                           round_timeout=0.1)
        coord = Coordinator(
            cfg, max_recoveries=0,
            worker_faults=WorkerFaultInjector.stall_at(0, 2, stall_s=0.5))
        with pytest.raises(WorkerStall):
            coord.fit(x, x[:K].copy())

    def test_two_stalls_in_one_round_collected_together(self, x, ref):
        faults = WorkerFaultInjector([
            WorkerFaultPlan(STALL, 0, 3, stall_s=100 * DEADLINE),
            WorkerFaultPlan(STALL, 2, 3, stall_s=100 * DEADLINE)])
        km = fit(x, n_workers=3, executor="process", checkpoint_every=2,
                 elastic=True, round_timeout=DEADLINE, worker_faults=faults)
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.dist_recoveries_ == 1    # one recovery event ...
        assert km.dist_stall_recoveries_ == 2   # ... two workers lost
        assert km.counters_.checkpoint_restores == 1

    def test_crash_plus_stall_in_one_round_cannot_hang(self, x):
        # the drain bugfix: with no round deadline, a crash used to be
        # followed by blocking recv()s — a second, stalled worker then
        # hung recovery forever.  The bounded drain abandons it instead
        # (no deadline was configured, so nothing licenses calling it
        # stalled: it stays a member, is reaped at teardown and
        # respawns clean), while the crashed worker is evicted.
        y0 = x[:K].copy()
        ref = FTKMeans(n_clusters=K, variant="tensorop", seed=3,
                       max_iter=10, init_centroids=y0).fit(x)
        faults = WorkerFaultInjector([
            WorkerFaultPlan(CRASH, 0, 3),
            WorkerFaultPlan(STALL, 1, 3, stall_s=600.0)])
        executor = ProcessExecutor()
        executor.DRAIN_TIMEOUT = 0.5       # keep the test fast
        executor.JOIN_TIMEOUT = 0.2        # ... incl. reaping the sleeper
        cfg = KMeansConfig(n_clusters=K, n_workers=3, seed=3, max_iter=10,
                           checkpoint_every=2, elastic=True)
        coord = Coordinator(cfg, executor=executor, worker_faults=faults)
        res = coord.fit(x, y0)
        assert np.array_equal(res.centroids, ref.cluster_centers_)
        assert res.crash_recoveries == 1 and res.stall_recoveries == 0
        assert res.plan.n_workers == 2
        assert sorted(res.plan.worker_ids) == [1, 2]
        assert not any(e["kind"] == "stall_timeout" for e in res.trace)

    def test_serial_collects_stall_and_crash_in_one_round(self, x, ref):
        # a crash must not short-circuit the serial loop: the stall
        # already detected (and any still to come) rides the same
        # exception, so one recovery evicts both
        faults = WorkerFaultInjector([
            WorkerFaultPlan(STALL, 0, 3, stall_s=0.5),
            WorkerFaultPlan(CRASH, 1, 3)])
        km = fit(x, n_workers=3, executor="serial", checkpoint_every=2,
                 elastic=True, round_timeout=0.1, worker_faults=faults)
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.dist_recoveries_ == 1
        assert km.counters_.worker_stalls == 1
        assert km.counters_.worker_crashes == 1

    def test_send_phase_wedge_is_bounded(self):
        # a child wedged *before* its recv leaves the pipe undrained; a
        # broadcast larger than the OS pipe buffer then blocks send()
        # outside any recv deadline.  The bounded send must classify it
        # within the budget instead of hanging the fit forever.
        import os
        import signal
        import time

        ex = ProcessExecutor()
        ex.round_timeout = 0.5
        ex.start(_echo_factory, (0, 1))
        try:
            big = np.zeros(1_000_000)            # ~8 MB >> pipe buffer
            assert [r[0] for r in ex.run_round(big, 1, {})] == ["ok", "ok"]
            os.kill(ex._procs[0].pid, signal.SIGSTOP)   # wedge, alive
            t0 = time.monotonic()
            with pytest.raises(WorkerStall) as exc:
                ex.run_round(big, 2, {})
            assert time.monotonic() - t0 < 10.0
            assert exc.value.stalled_ids == (0,)
            # the per-phase deadline protects the healthy worker: the
            # wedge ate the send budget, not worker 1's answer budget
            assert 1 not in exc.value.failed_ids
        finally:
            ex.shutdown()

    def test_crash_plus_stall_with_deadline_evicts_both(self, x):
        # with a deadline armed, the same round classifies the sleeper
        # as stalled, kills it, and one recovery evicts both at once
        y0 = x[:K].copy()
        ref = FTKMeans(n_clusters=K, variant="tensorop", seed=3,
                       max_iter=10, init_centroids=y0).fit(x)
        faults = WorkerFaultInjector([
            WorkerFaultPlan(CRASH, 0, 3),
            WorkerFaultPlan(STALL, 1, 3, stall_s=600.0)])
        cfg = KMeansConfig(n_clusters=K, n_workers=3, seed=3, max_iter=10,
                           checkpoint_every=2, elastic=True,
                           round_timeout=DEADLINE, executor="process")
        coord = Coordinator(cfg, worker_faults=faults)
        res = coord.fit(x, y0)
        assert np.array_equal(res.centroids, ref.cluster_centers_)
        assert res.recoveries == 1         # one event ...
        assert res.crash_recoveries == 1 and res.stall_recoveries == 1
        assert res.plan.n_workers == 1     # ... both evicted
        assert sorted(res.plan.worker_ids) == [2]


class TestElasticBitIdentity:
    """Satellite: crash under n_workers x executors must equal the
    single-worker trajectory bit-for-bit, including the post-shrink
    rounds and the checkpoint restore."""

    @pytest.mark.parametrize("n_workers", [2, 3, 4])
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_crash_shrink_bit_identity(self, x, ref, n_workers, executor):
        km = fit(x, n_workers=n_workers, executor=executor,
                 checkpoint_every=2, elastic=True,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        assert km.n_workers_ == n_workers - 1
        assert km.dist_shrinks_ == 1
        assert km.counters_.worker_crashes == 1
        (shrink,) = [e for e in km.dist_trace_ if e["kind"] == "shrink"]
        assert 1 not in shrink["survivors"]
        assert shrink["lost"] == [1]

    def test_restore_resumes_from_latest_checkpoint_after_shrink(self, x):
        km = fit(x, n_workers=3, checkpoint_every=3, elastic=True,
                 worker_faults=WorkerFaultInjector.crash_at(0, 8))
        (restore,) = [e for e in km.dist_trace_ if e["kind"] == "restore"]
        assert restore["iteration"] == 6

    def test_two_sequential_shrinks(self, x, ref):
        faults = WorkerFaultInjector([WorkerFaultPlan(CRASH, 0, 3),
                                      WorkerFaultPlan(CRASH, 2, 7)])
        km = fit(x, n_workers=3, checkpoint_every=2, elastic=True,
                 worker_faults=faults)
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.dist_shrinks_ == 2
        assert km.dist_recoveries_ == 2
        shrinks = [e for e in km.dist_trace_ if e["kind"] == "shrink"]
        assert shrinks[0]["survivors"] == [1, 2]
        assert shrinks[1]["survivors"] == [1]

    def test_stall_then_shrink_with_weights(self, x):
        rng = np.random.default_rng(7)
        w = rng.random(M)
        wref = FTKMeans(n_clusters=K, variant="tensorop", seed=3,
                        max_iter=10).fit(x, sample_weight=w)
        km = FTKMeans(n_clusters=K, variant="tensorop", seed=3, max_iter=10,
                      n_workers=3, checkpoint_every=2, elastic=True,
                      round_timeout=0.1,
                      worker_faults=WorkerFaultInjector.stall_at(
                          1, 4, stall_s=0.5)).fit(x, sample_weight=w)
        assert np.array_equal(km.cluster_centers_, wref.cluster_centers_)
        assert np.array_equal(km.labels_, wref.labels_)
        assert km.n_workers_ == 2

    def test_elastic_off_by_default(self, x, ref):
        km = fit(x, n_workers=3, checkpoint_every=2,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3
        assert km.dist_shrinks_ == 0


class TestConfigValidation:
    def test_round_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            KMeansConfig(round_timeout=0.0)
        with pytest.raises(ValueError):
            KMeansConfig(round_timeout=-1.0)

    def test_knobs_reach_the_coordinator(self):
        cfg = KMeansConfig(n_workers=2, elastic=True, round_timeout=2.5)
        coord = Coordinator(cfg)
        assert coord.elastic is True
        assert coord.round_timeout == 2.5
        assert coord.executor.round_timeout == 2.5
