"""Double-buffered rounds and the adaptive round deadline.

The pipeline overlaps the next round's worker compute with the previous
round's off-critical bookkeeping; it must stay bit-identical to the
sequential loop (same rounds, same merge order), collect-and-discard
the one speculative round a convergence break leaves in flight, and
stand down entirely on fault-injecting fits.  ``round_timeout="auto"``
arms the executor deadline from a trailing median of observed round
times and must catch a genuine stall without hand tuning.
"""

import numpy as np
import pytest

from repro.core.api import FTKMeans
from repro.core.config import KMeansConfig
from repro.dist.coordinator import Coordinator
from repro.dist.executors import make_executor
from repro.dist.faults import WorkerFaultInjector


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    x = rng.standard_normal((900, 16)).astype(np.float32)
    return x


def _cfg(**kw):
    base = dict(n_clusters=6, mode="fast", n_workers=3, max_iter=6,
                tol=0.0, seed=0)
    base.update(kw)
    return KMeansConfig(**base)


def _y0(x, n):
    return x[:n].copy()


class TestOverlap:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_overlapped_bit_identical_to_serial(self, data, executor):
        x = data
        serial = Coordinator(_cfg(executor="serial")).fit(x, _y0(x, 6))
        coord = Coordinator(_cfg(executor=executor))
        res = coord.fit(x, _y0(x, 6))
        assert np.array_equal(serial.centroids, res.centroids)
        assert np.array_equal(serial.labels, res.labels)
        assert serial.inertia_history == res.inertia_history

    def test_overlap_capability_flags(self):
        assert make_executor("serial").supports_overlap is False
        assert make_executor("thread").supports_overlap is True
        assert make_executor("process").supports_overlap is True

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_collect_without_send_raises(self, data, executor):
        """Every backend honours the split-phase contract: collecting
        with no round in flight is a typed misuse, not an
        AttributeError/KeyError from uninitialised state."""
        from repro.core.variants import _resolve_tile  # noqa: F401
        from repro.dist.plan import ShardPlan
        from repro.dist.worker import build_worker
        from functools import partial

        x = data
        cfg = _cfg(executor=executor)
        plan = ShardPlan.build(x.shape[0], 2, 256)
        ex = make_executor(executor)
        ex.start(partial(build_worker, x=x, plan=plan, cfg=cfg,
                         n_clusters=6), plan.worker_ids)
        try:
            with pytest.raises(RuntimeError, match="without a sent round"):
                ex.collect_round()
        finally:
            ex.shutdown()

    def test_convergence_break_discards_inflight_round(self, data):
        """A tol-converging fit ends with one speculative round in
        flight; the coordinator must drain it and return the exact
        sequential result (n_iter from the converged round, not the
        speculative one)."""
        x = data
        seq = Coordinator(_cfg(executor="serial", tol=1e-3, max_iter=30)
                          ).fit(x, _y0(x, 6))
        ovl = Coordinator(_cfg(executor="thread", tol=1e-3, max_iter=30)
                          ).fit(x, _y0(x, 6))
        assert seq.converged and ovl.converged
        assert seq.n_iter == ovl.n_iter
        assert np.array_equal(seq.centroids, ovl.centroids)

    def test_faulty_fits_run_sequentially(self, data):
        """Fault injection disables the pipeline (a converged fit must
        never draw the next round's one-shot directives) — and recovery
        still lands on the clean bits."""
        x = data
        clean = Coordinator(_cfg(executor="thread")).fit(x, _y0(x, 6))
        coord = Coordinator(
            _cfg(executor="thread", checkpoint_every=2),
            worker_faults=WorkerFaultInjector.crash_at(1, 3))
        res = coord.fit(x, _y0(x, 6))
        assert res.recoveries == 1
        assert np.array_equal(clean.centroids, res.centroids)

    def test_overlap_off_switch(self, data):
        x = data
        res = Coordinator(_cfg(executor="thread"),
                          overlap_rounds=False).fit(x, _y0(x, 6))
        ref = Coordinator(_cfg(executor="serial")).fit(x, _y0(x, 6))
        assert np.array_equal(ref.centroids, res.centroids)

    def test_real_crash_in_overlapped_round_recovers(self, data):
        """A genuine worker death (no injector: overlap stays armed)
        surfacing from an overlapped collect runs ordinary recovery."""
        x = data
        clean = Coordinator(_cfg(executor="thread")).fit(x, _y0(x, 6))
        coord = Coordinator(_cfg(executor="thread", checkpoint_every=1))
        # kill one worker's round mid-fit without a fault injector, so
        # the overlap guard (faults is None) keeps the pipeline on
        fired = {"done": False}
        orig = coord.executor.__class__.send_round

        def sabotage(self, y, iteration, directives):
            if iteration == 4 and not fired["done"]:
                fired["done"] = True
                from repro.dist.faults import CRASH, WorkerFaultPlan
                directives = dict(directives)
                directives[0] = {"crash": WorkerFaultPlan(CRASH, 0, 4)}
            return orig(self, y, iteration, directives)

        coord.executor.send_round = sabotage.__get__(coord.executor)
        res = coord.fit(x, _y0(x, 6))
        assert res.recoveries == 1
        assert np.array_equal(clean.centroids, res.centroids)


class TestAdaptiveDeadline:
    def test_config_accepts_auto(self):
        cfg = _cfg(round_timeout="auto")
        assert cfg.round_timeout == "auto"
        with pytest.raises(ValueError):
            _cfg(round_timeout="later")
        with pytest.raises(ValueError):
            _cfg(round_timeout=-1.0)

    def test_fixed_float_behaviour_unchanged(self, data):
        x = data
        res = Coordinator(_cfg(executor="serial",
                               round_timeout=30.0)).fit(x, _y0(x, 6))
        ref = Coordinator(_cfg(executor="serial")).fit(x, _y0(x, 6))
        assert np.array_equal(ref.centroids, res.centroids)

    def test_auto_arms_deadline_from_observed_rounds(self, data):
        """After the warm-up rounds the executor deadline is a multiple
        of the trailing median — present, positive and floored."""
        x = data
        coord = Coordinator(_cfg(executor="serial", round_timeout="auto"))
        assert coord.adaptive_timeout
        assert coord.executor.round_timeout is None  # cold start: unarmed
        coord.fit(x, _y0(x, 6))
        armed = coord.executor.round_timeout
        assert armed is not None
        assert armed >= Coordinator.ADAPTIVE_FLOOR_S

    def test_auto_detects_a_stall(self, data):
        """A worker stalling far past the adaptive deadline is caught
        and recovered, without any hand-tuned budget."""
        x = data
        clean = Coordinator(_cfg(executor="serial")).fit(x, _y0(x, 6))
        coord = Coordinator(
            _cfg(executor="serial", round_timeout="auto",
                 checkpoint_every=1),
            worker_faults=WorkerFaultInjector.stall_at(
                0, 4, stall_s=Coordinator.ADAPTIVE_FLOOR_S + 0.3))
        res = coord.fit(x, _y0(x, 6))
        assert res.stall_recoveries == 1
        assert np.array_equal(clean.centroids, res.centroids)

    def test_auto_deadline_rewarms_after_recovery(self, data):
        """Recovery invalidates the round-time history (an elastic
        shrink makes honest rounds slower): the deadline disarms and
        the post-recovery fit completes without phantom stalls."""
        x = data
        clean = Coordinator(_cfg(executor="serial")).fit(x, _y0(x, 6))
        coord = Coordinator(
            _cfg(executor="serial", round_timeout="auto",
                 checkpoint_every=1, elastic=True, n_workers=3),
            worker_faults=WorkerFaultInjector.stall_at(
                0, 4, stall_s=Coordinator.ADAPTIVE_FLOOR_S + 0.3))
        # deadline would be armed when the stall fires; after recovery
        # the history must be gone so the (larger-shard) survivors get
        # a fresh warm-up instead of the stale pre-shrink median
        res = coord.fit(x, _y0(x, 6))
        assert res.stall_recoveries == 1 and res.shrinks == 1
        # exactly one recovery: no phantom-stall spiral on the survivors
        assert res.recoveries == 1
        assert np.array_equal(clean.centroids, res.centroids)

    def test_auto_bit_identical_on_clean_fit(self, data):
        x = data
        ref = Coordinator(_cfg(executor="serial")).fit(x, _y0(x, 6))
        res = Coordinator(_cfg(executor="thread",
                               round_timeout="auto")).fit(x, _y0(x, 6))
        assert np.array_equal(ref.centroids, res.centroids)
        assert np.array_equal(ref.labels, res.labels)

    def test_estimator_accepts_auto(self, data):
        x = data
        km = FTKMeans(n_clusters=5, n_workers=2, executor="thread",
                      round_timeout="auto", max_iter=4, tol=0.0,
                      seed=0).fit(x)
        single = FTKMeans(n_clusters=5, max_iter=4, tol=0.0,
                          seed=0).fit(x)
        assert np.array_equal(km.cluster_centers_, single.cluster_centers_)
