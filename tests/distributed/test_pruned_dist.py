"""Distributed pruning: sharded fits with bound pruning enabled stay
bit-identical to the single-worker fit on every executor — including
membership histories (crash -> shrink -> re-expand) that rebuild the
shard-local bounds state mid-fit — plus the fleet event log and the
cooperative cancellation of abandoned thread-backend workers.
"""

import functools
import threading
import time

import numpy as np
import pytest

from repro import FTKMeans
from repro.core.config import KMeansConfig
from repro.core.engine import EngineCancelled, FastPathEngine
from repro.dist import (
    Coordinator,
    FleetManager,
    WorkerFaultInjector,
    make_executor,
)
from repro.dist.plan import ShardPlan
from repro.dist.worker import build_worker
from repro.gpusim.counters import PerfCounters

K, D = 6, 12


@pytest.fixture(scope="module")
def data():
    """A pruning-friendly workload: blob-sorted rows (frozen blobs empty
    whole GEMM units) with one slow-converging overlapped pair keeping
    the fit alive past the freeze of the easy clusters."""
    rng = np.random.default_rng(7)
    centers = (rng.normal(size=(K, D)) * 8.0).astype(np.float32)
    centers[1] = centers[0] + 0.4           # the slow pair
    x = np.concatenate([c + rng.normal(scale=0.8,
                                       size=(400, D)).astype(np.float32)
                        for c in centers])
    y0 = centers + rng.normal(scale=0.3,
                              size=centers.shape).astype(np.float32)
    return np.ascontiguousarray(x), y0.astype(np.float32)


def fit(data, **kw):
    x, y0 = data
    base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=12,
                tol=0, init_centroids=y0)
    base.update(kw)
    return FTKMeans(**base).fit(x)


@pytest.fixture(scope="module")
def ref(data):
    return fit(data)


def assert_same_fit(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.cluster_centers_.view(np.uint32),
                          b.cluster_centers_.view(np.uint32))
    assert a.inertia_ == b.inertia_
    assert a.inertia_history_ == b.inertia_history_


def test_workload_actually_prunes(data):
    """Guard on the fixture: a single engine run over this workload
    must engage pruning (otherwise the dist tests prove nothing)."""
    x, y0 = data
    eng = FastPathEngine(None, np.float32, tf32=True, prune="auto")
    try:
        eng.begin_fit(x, K)
        y = y0.copy()
        for _ in range(10):
            labels, _ = eng.assign(x, y, PerfCounters())
            sums = np.zeros((K, D), dtype=np.float64)
            cnt = np.zeros(K)
            np.add.at(sums, labels, x.astype(np.float64))
            np.add.at(cnt, labels, 1)
            nz = cnt > 0
            y = y.copy()
            y[nz] = (sums[nz] / cnt[nz, None]).astype(np.float32)
        assert eng.stats.rows_pruned > 0
        assert eng.stats.last_active_frac < 1.0
    finally:
        eng.end_fit()


class TestShardedPrunedBitIdentity:
    """Satellite: pruned sharded fits == single-worker, bit for bit,
    on every executor (bounds are shard-local and never leave a worker,
    so the merge sees identical partials either way)."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_match_single_worker(self, data, ref, executor):
        km = fit(data, n_workers=3, executor=executor)
        assert_same_fit(km, ref)

    def test_pruned_vs_unpruned_sharded(self, data):
        on = fit(data, n_workers=3, executor="serial")
        off = fit(data, n_workers=3, executor="serial", prune="off")
        assert_same_fit(on, off)

    def test_sharded_pruned_under_injection(self, data):
        on = fit(data, n_workers=2, executor="serial", p_inject=0.3,
                 abft="ftkmeans")
        off = fit(data, n_workers=2, executor="serial", p_inject=0.3,
                  abft="ftkmeans", prune="off")
        assert_same_fit(on, off)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_crash_shrink_reexpand_rebuilds_bounds(self, data, ref,
                                                   executor):
        # the acceptance membership history: a crash mid-fit shrinks
        # onto survivors (fresh workers -> fresh bounds), then
        # re-expands to target (fresh again) — every rebuild must land
        # on the same trajectory
        km = fit(data, n_workers=3, executor=executor, checkpoint_every=2,
                 target_workers=3,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3
        kinds = [e["kind"] for e in km.dist_trace_]
        assert "shrink" in kinds and "expand" in kinds

    def test_promote_keeps_survivor_bounds_warm(self, data, ref):
        # promotion rebuilds only the dead id: the survivors keep their
        # engines (and bounds history) across the recovery
        km = fit(data, n_workers=3, executor="serial", checkpoint_every=2,
                 hot_spares=1,
                 worker_faults=WorkerFaultInjector.crash_at(0, 4))
        assert_same_fit(km, ref)
        assert km.dist_promotions_ == 1


class TestFleetEventLog:
    """Satellite: the structured fleet event hook fires synchronously
    and in order for every membership action."""

    def test_kill_promote_event_ordering(self, data, ref):
        events = []
        km = fit(data, n_workers=3, executor="serial", checkpoint_every=2,
                 hot_spares=1, event_hook=events.append,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        kinds = [e["event"] for e in events]
        assert kinds == ["promote"]
        assert events[0]["lost"] == [1]
        assert events[0]["survivors"] == [0, 2]

    def test_kill_shrink_expand_event_ordering(self, data, ref):
        events = []
        km = fit(data, n_workers=3, executor="serial", checkpoint_every=2,
                 target_workers=3, event_hook=events.append,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        kinds = [e["event"] for e in events]
        assert kinds == ["shrink", "expand"]
        assert events[0]["lost"] == [1]
        assert events[1]["grown"] == [1]
        assert events[1]["members"] == [0, 1, 2]

    def test_heartbeat_events_are_emitted_and_ordered(self):
        events = []

        class _Ex:
            def heartbeat(self, iteration, timeout):
                pass

        mgr = FleetManager(heartbeat_interval=0.0001,
                           event_hook=events.append)
        mgr.executor = _Ex()
        for it in (1, 2, 3):
            mgr._last_beat = 0.0            # force the interval elapsed
            mgr.maybe_heartbeat(it)
        assert [e["event"] for e in events] == ["heartbeat"] * 3
        assert [e["iteration"] for e in events] == [1, 2, 3]

    def test_heartbeat_failure_logged_before_recovery(self):
        # the kill -> promote unit ordering: the failed sweep logs
        # first (before its exception propagates), the promote follows
        events = []

        class _Crash(Exception):
            failed_ids = [1]

        class _Ex:
            def heartbeat(self, iteration, timeout):
                raise _Crash()

            def spares_ready(self):
                return 1

            def replace_workers(self, factory, lost):
                pass

            def prewarm_spares(self, n):
                pass

        mgr = FleetManager(target_workers=2, hot_spares=1,
                           heartbeat_interval=0.0001,
                           event_hook=events.append)
        mgr.executor = _Ex()
        mgr._last_beat = 0.0
        with pytest.raises(_Crash):
            mgr.maybe_heartbeat(5)
        plan = ShardPlan.build(512, 2, 256)
        mgr.recover(plan, lambda p: (lambda wid: None), _Crash())
        assert [e["event"] for e in events] == ["heartbeat_failed",
                                               "promote"]
        assert events[0]["iteration"] == 5
        assert events[0]["failed_ids"] == [1]
        assert events[1]["lost"] == [1]

    def test_no_hook_no_events_no_crash(self, data, ref):
        km = fit(data, n_workers=2, executor="serial", checkpoint_every=2,
                 hot_spares=1,
                 worker_faults=WorkerFaultInjector.crash_at(0, 3))
        assert_same_fit(km, ref)


class TestWorkerCancellation:
    """Satellite (carried follow-up): the engine's cooperative
    cancellation token, checked inside the chunk loop, bounds how long
    an abandoned thread-backend worker keeps computing."""

    def _factory(self, x, plan, cfg):
        return functools.partial(build_worker, x=x, plan=plan, cfg=cfg,
                                 n_clusters=K)

    def test_worker_cancel_aborts_assignment(self, data):
        x, y0 = data
        cfg = KMeansConfig(n_clusters=K, chunk_bytes=8 << 10, seed=0)
        plan = ShardPlan.build(len(x), 1, 256)
        w = build_worker(0, x=x, plan=plan, cfg=cfg, n_clusters=K)
        try:
            w.run_round(y0, 1, None)        # healthy round first
            w.cancel()
            with pytest.raises(EngineCancelled):
                w.run_round(y0, 2, None)
        finally:
            w.close()

    def test_stalled_thread_worker_stops_within_bounded_chunks(self, data):
        # a worker wedged mid-round (stall directive) blows the round
        # deadline; collect_round must cancel it so the abandoned
        # daemon thread stops at its first chunk boundary instead of
        # computing the whole shard
        x, y0 = data
        cfg = KMeansConfig(n_clusters=K, chunk_bytes=8 << 10, seed=0)
        plan = ShardPlan.build(len(x), 2, 256)
        ex = make_executor("thread")
        ex.round_timeout = 0.25
        ex.start(self._factory(x, plan, cfg), plan.worker_ids)
        try:
            ex.send_round(y0, 1, {0: {"stall_s": 1.0}})
            with pytest.raises(Exception) as ei:
                ex.collect_round()
            assert list(getattr(ei.value, "failed_ids", ())) == [0]
            # the stall runs dry ~0.75 s after the deadline fired; the
            # cancelled assign must then abort on its first chunk check
            task = ex._inflight[0]
            assert task.done.wait(5.0)
            assert isinstance(task.exc, EngineCancelled)
            eng = ex._workers[0].kernel.engine
            assert eng.stats.gemm_calls == 0   # not one chunk computed
        finally:
            ex.shutdown()

    def test_teardown_cancels_running_workers(self, data):
        # cancel_round + restart abandons the in-flight tasks; teardown
        # must cancel them so the daemon threads die at the next chunk
        x, y0 = data
        cfg = KMeansConfig(n_clusters=K, chunk_bytes=8 << 10, seed=0)
        plan = ShardPlan.build(len(x), 2, 256)
        ex = make_executor("thread")
        ex.start(self._factory(x, plan, cfg), plan.worker_ids)
        try:
            ex.send_round(y0, 1, {0: {"stall_s": 1.0}})
            time.sleep(0.05)                # let the round start
            tasks = dict(ex._inflight)
            ex.cancel_round()
            ex.restart(self._factory(x, plan, cfg), plan.worker_ids)
            assert tasks[0].done.wait(5.0)
            assert isinstance(tasks[0].exc, EngineCancelled)
        finally:
            ex.shutdown()

    def test_cancelled_worker_fit_still_bit_exact(self, data, ref):
        # end to end: a stall that forces the deadline + cancel path
        # must not disturb the recovered fit's bits
        km = fit(data, n_workers=3, executor="thread", checkpoint_every=2,
                 target_workers=3, round_timeout=0.25,
                 worker_faults=WorkerFaultInjector.stall_at(
                     1, 4, stall_s=1.0))
        assert_same_fit(km, ref)
