"""Checkpoint/restart: crash-at-k recovery converges to the same bits."""

import numpy as np
import pytest

from repro import FTKMeans
from repro.dist import (
    CheckpointStore,
    WorkerCrash,
    WorkerFaultInjector,
    WorkerFaultPlan,
)
from repro.dist.faults import CRASH

M, N_FEATURES, K = 1537, 12, 7


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)


def fit(x, **kw):
    base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=10,
                n_workers=2)
    base.update(kw)
    return FTKMeans(**base).fit(x)


class TestCheckpointStore:
    def test_memory_roundtrip_and_pruning(self):
        store = CheckpointStore(keep=2)
        for it in (0, 2, 4, 6):
            store.save(it, {"iteration": it, "v": it * 10})
        assert store.iterations == [4, 6]
        it, state = store.load_latest()
        assert it == 6 and state["v"] == 60

    def test_disk_roundtrip_and_pruning(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", keep=2)
        for it in (0, 3, 5):
            store.save(it, {"y": np.arange(it + 1)})
        assert store.iterations == [3, 5]
        it, state = store.load_latest()
        assert it == 5 and np.array_equal(state["y"], np.arange(6))
        assert len(list((tmp_path / "ckpt").glob("ckpt_*.pkl"))) == 2

    def test_snapshots_never_alias_live_state(self):
        store = CheckpointStore()
        y = np.zeros(4)
        store.save(1, {"y": y})
        y[:] = 99.0
        _, state = store.load_latest()
        assert np.array_equal(state["y"], np.zeros(4))

    def test_empty_store_loads_none(self):
        assert CheckpointStore().load_latest() is None

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, {})
        store.clear()
        assert store.load_latest() is None

    @staticmethod
    def _strand_tmp(tmp_path, name):
        """A tmp file aged past the live-writer grace window."""
        import os
        import time

        p = tmp_path / name
        p.write_bytes(b"partial")
        old = time.time() - 2 * CheckpointStore.TMP_SWEEP_AGE_S
        os.utime(p, (old, old))
        return p

    def test_stray_tmp_swept_on_init(self, tmp_path):
        # a crash between write and replace strands a tmp file the
        # pruning glob can never touch; a fresh store sweeps it
        self._strand_tmp(tmp_path, "ckpt_00000003.abc123.tmp")
        store = CheckpointStore(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert store.load_latest() is None   # tmp never restorable

    def test_clear_sweeps_tmp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, {"v": 1})
        self._strand_tmp(tmp_path, "ckpt_00000009.dead.tmp")
        store.clear()
        assert not list(tmp_path.iterdir())

    def test_sweep_spares_a_live_writers_tmp(self, tmp_path):
        # fresh tmp files may be a concurrent writer mid-save on a
        # shared directory: the age guard must leave them alone
        live = tmp_path / "ckpt_00000004.live.tmp"
        live.write_bytes(b"mid-save")
        CheckpointStore(tmp_path)
        assert live.exists()

    def test_save_leaves_no_tmp_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for it in range(4):
            store.save(it, {"v": it})
        # iterations flushes the background writer first: only after
        # the barrier is "no stranded tmp" a guarantee (a *live* tmp
        # may exist while a write is in flight)
        assert store.iterations == [2, 3]
        assert not list(tmp_path.glob("*.tmp"))


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_it", [1, 5, 9])
    def test_crash_at_k_recovers_to_same_centroids(self, x, crash_it):
        clean = fit(x, checkpoint_every=2)
        crashed = fit(x, checkpoint_every=2,
                      worker_faults=WorkerFaultInjector.crash_at(1, crash_it))
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)
        assert np.array_equal(crashed.labels_, clean.labels_)
        assert crashed.inertia_ == clean.inertia_
        assert crashed.dist_recoveries_ == 1
        assert crashed.counters_.worker_crashes == 1
        assert crashed.counters_.checkpoint_restores == 1
        kinds = [e["kind"] for e in crashed.dist_trace_]
        assert kinds.count("crash") == 1 and kinds.count("restore") == 1

    def test_restore_resumes_from_latest_checkpoint(self, x):
        crashed = fit(x, checkpoint_every=3,
                      worker_faults=WorkerFaultInjector.crash_at(0, 8))
        restore = [e for e in crashed.dist_trace_
                   if e["kind"] == "restore"][0]
        assert restore["iteration"] == 6   # newest checkpoint before 8

    def test_no_checkpoint_restarts_from_scratch(self, x):
        clean = fit(x, checkpoint_every=0)
        crashed = fit(x, checkpoint_every=0,
                      worker_faults=WorkerFaultInjector.crash_at(0, 4))
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)
        restore = [e for e in crashed.dist_trace_
                   if e["kind"] == "restore"][0]
        assert restore["iteration"] == 0

    def test_process_executor_survives_real_worker_death(self, x):
        clean = fit(x, max_iter=8, executor="process", checkpoint_every=2)
        crashed = fit(x, max_iter=8, executor="process", checkpoint_every=2,
                      worker_faults=WorkerFaultInjector.crash_at(0, 4))
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)
        assert crashed.dist_recoveries_ == 1

    def test_recovery_bit_exact_under_seu_injection(self, x):
        cfg = dict(variant="ft", p_inject=0.3, checkpoint_every=2,
                   max_iter=8)
        clean = fit(x, **cfg)
        crashed = fit(x, **cfg,
                      worker_faults=WorkerFaultInjector.crash_at(1, 6))
        # per-round injector streams are keyed by (seed, worker,
        # iteration), so the replay re-injects the identical SEUs
        assert clean.counters_.errors_injected > 0
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)

    def test_disk_checkpoints(self, x, tmp_path):
        clean = fit(x, checkpoint_every=2)
        crashed = fit(x, checkpoint_every=2, checkpoint_dir=tmp_path,
                      worker_faults=WorkerFaultInjector.crash_at(1, 5))
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)
        assert list(tmp_path.glob("ckpt_*.pkl"))

    def test_recovery_budget_exhausts(self, x):
        # two scheduled crashes of the same (worker, iteration): the
        # second fires on the replay and exceeds max_recoveries=1
        faults = WorkerFaultInjector([WorkerFaultPlan(CRASH, 0, 2),
                                      WorkerFaultPlan(CRASH, 0, 2)])
        from repro.dist import Coordinator
        from repro.core.config import KMeansConfig

        cfg = KMeansConfig(n_clusters=K, n_workers=2, seed=3, max_iter=6)
        coord = Coordinator(cfg, worker_faults=faults, max_recoveries=1)
        y0 = x[:K].copy()
        with pytest.raises(WorkerCrash):
            coord.fit(x, y0)

    def test_reused_checkpoint_dir_never_leaks_old_fit(self, x, tmp_path):
        # a crash in fit B must not restore fit A's snapshots
        fit(x, checkpoint_every=2, checkpoint_dir=tmp_path)
        rng = np.random.default_rng(9)
        x2 = rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)
        clean = fit(x2, checkpoint_every=2)
        crashed = fit(x2, checkpoint_every=2, checkpoint_dir=tmp_path,
                      worker_faults=WorkerFaultInjector.crash_at(0, 1))
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)

    def test_multi_crash_counters_are_monotonic(self, x):
        faults = WorkerFaultInjector([WorkerFaultPlan(CRASH, 0, 3),
                                      WorkerFaultPlan(CRASH, 1, 6)])
        clean = fit(x, checkpoint_every=2)
        crashed = fit(x, checkpoint_every=2, worker_faults=faults)
        assert crashed.dist_recoveries_ == 2
        assert crashed.counters_.worker_crashes == 2
        assert crashed.counters_.checkpoint_restores == 2
        assert np.array_equal(crashed.cluster_centers_,
                              clean.cluster_centers_)

    def test_fault_tallies_survive_a_later_restore(self, x):
        # a stall + corrupt fire at iteration 3 (committed), a crash at
        # iteration 4 restores the iteration-2 checkpoint: the one-shot
        # faults never replay, so their tallies must not vanish with
        # the restored counter snapshot
        from repro.dist.faults import CORRUPT_PARTIAL, STALL
        from repro.gpusim.faults import FaultPlan

        seu = FaultPlan(step=0, row_frac=0.5, col_frac=0.5, bit=55)
        faults = WorkerFaultInjector([
            WorkerFaultPlan(STALL, 0, 3, stall_s=0.001),
            WorkerFaultPlan(CORRUPT_PARTIAL, 1, 3, seu=seu),
            WorkerFaultPlan(CRASH, 1, 4),
        ])
        km = fit(x, checkpoint_every=2, worker_faults=faults)
        assert km.counters_.worker_stalls == 1
        assert km.counters_.errors_injected >= 1
        assert km.counters_.errors_detected >= 1
        assert km.counters_.errors_corrected >= 1
        assert km.counters_.worker_crashes == 1

    def test_counters_describe_committed_trajectory_only(self, x):
        # rolled-back iterations must not double-count work
        clean = fit(x, checkpoint_every=2)
        crashed = fit(x, checkpoint_every=2,
                      worker_faults=WorkerFaultInjector.crash_at(1, 3))
        assert (crashed.counters_.checksum_tests
                == clean.counters_.checksum_tests)
