"""Reduce topologies: star / stream / tree stay bit-identical.

The merge is a strict sequential left fold, so every topology must
produce the single-worker fit bit for bit — streaming commits only
reorder *when* each shard folds relative to arrivals, never the fold
order itself, and the pairwise combine tree is a doubling-prefix
rewrite of the same left spine.  The contract tests here booby-trap
exactly the ways a topology could silently go wrong: out-of-shard-order
arrivals must not change commit order, an out-of-order combine must be
rejected on the worker, and a crash mid-combine must replay through
recovery onto the exact clean bits.
"""

import json
from functools import partial

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FTKMeans
from repro.core.accumulate import StreamedAccumulator
from repro.core.config import KMeansConfig, REDUCE_TOPOLOGIES
from repro.dist import (
    Coordinator,
    ReduceOccupancy,
    WorkerFaultInjector,
    combine_schedule,
    make_executor,
)
from repro.dist.executors import SerialExecutor
from repro.dist.plan import ShardPlan
from repro.dist.worker import build_worker
from repro.obs.trace import TraceRecorder

M, N_FEATURES, K = 1537, 12, 7


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)


@pytest.fixture(scope="module")
def ref(x):
    return fit(x)


def fit(x, **kw):
    base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=10)
    base.update(kw)
    return FTKMeans(**base).fit(x)


def assert_same_fit(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
    assert a.inertia_ == b.inertia_
    assert a.n_iter_ == b.n_iter_
    assert a.inertia_history_ == b.inertia_history_


class TestTopologyBitIdentity:
    """Hypothesis: ANY topology x worker count matches single-worker."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(topology=st.sampled_from(REDUCE_TOPOLOGIES),
           n_workers=st.sampled_from([1, 2, 3, 4, 8]))
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_in_process_topologies_bit_identical(self, x, ref, executor,
                                                 topology, n_workers):
        km = fit(x, n_workers=n_workers, executor=executor,
                 reduce_topology=topology)
        assert_same_fit(km, ref)
        if n_workers > 1:       # n_workers=1 takes the single-path fit
            assert km.dist_reduce_topology_ in REDUCE_TOPOLOGIES[1:]
            assert km.dist_reduce_busy_s_ >= 0.0

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(topology=st.sampled_from(["stream", "tree"]),
           n_workers=st.sampled_from([3, 8]))
    def test_process_topologies_bit_identical(self, x, ref, topology,
                                              n_workers):
        km = fit(x, n_workers=n_workers, executor="process",
                 reduce_topology=topology)
        assert_same_fit(km, ref)

    # owners of the 7-shard tree's combine steps — only an owner ever
    # executes a combine, so only an owner can crash inside one
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(wid=st.sampled_from([1, 2, 4]),
           crash_it=st.integers(min_value=2, max_value=8))
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_crash_mid_combine_recovery_bit_identical(self, x, ref,
                                                      executor, wid,
                                                      crash_it):
        """A worker that dies inside a tree combine — after its round
        answer was already gathered — replays through checkpoint
        recovery onto the clean fit's exact bits."""
        km = fit(x, n_workers=8, executor=executor, checkpoint_every=2,
                 reduce_topology="tree",
                 worker_faults=WorkerFaultInjector.crash_combine_at(
                     wid, crash_it))
        assert_same_fit(km, ref)
        assert km.dist_recoveries_ == 1

    def test_process_crash_mid_combine_recovery(self, x, ref):
        km = fit(x, n_workers=8, executor="process", checkpoint_every=2,
                 reduce_topology="tree",
                 worker_faults=WorkerFaultInjector.crash_combine_at(1, 3))
        assert_same_fit(km, ref)
        assert km.dist_recoveries_ == 1

    def test_tree_contains_corrupt_partial(self, x, ref):
        """ABFT under tree reduce: the inline pre-update checksum
        catches a corrupted partial, the authoritative star re-feed
        replaces the merged state, and the fit's bits never move."""
        km = fit(x, n_workers=8, executor="serial", reduce_topology="tree",
                 worker_faults=WorkerFaultInjector.corrupt_at(3, 2))
        assert_same_fit(km, ref)
        assert km.counters_.errors_detected == 1
        assert km.counters_.errors_corrected == 1


class _ReversedArrivalExecutor(SerialExecutor):
    """Booby-trap backend: streams results in REVERSED worker order.

    A streaming merge that trusted arrival order would fold shard W-1
    first and change the fit's bits; the coordinator must buffer and
    commit in shard order regardless.
    """

    name = "serial"

    def __init__(self):
        super().__init__()
        self.arrival_log = []

    def collect_round_stream(self):
        buffered = list(super().collect_round_stream())
        for wid, res in reversed(buffered):
            self.arrival_log.append(wid)
            yield wid, res


def _cfg(**kw):
    base = dict(n_clusters=K, mode="fast", n_workers=4, max_iter=6,
                tol=0.0, seed=0, variant="tensorop")
    base.update(kw)
    return KMeansConfig(**base)


class TestMergeOrderContract:
    def test_reversed_arrivals_commit_in_shard_order(self, x):
        """Commit order (merge spans) is shard order even when every
        arrival lands out of order — and the bits match the star fit."""
        y0 = x[:K].copy()
        star = Coordinator(_cfg(reduce_topology="star",
                                executor="serial")).fit(x, y0)
        tracer = TraceRecorder()
        ex = _ReversedArrivalExecutor()
        res = Coordinator(_cfg(reduce_topology="stream"), executor=ex,
                          tracer=tracer).fit(x, y0)
        assert np.array_equal(star.centroids, res.centroids)
        assert np.array_equal(star.labels, res.labels)
        assert star.inertia_history == res.inertia_history
        merge_spans = [s for s in tracer.spans if s.name == "merge"]
        assert merge_spans, "stream rounds must emit per-commit spans"
        n_workers = res.plan.n_workers
        assert n_workers >= 2
        # arrivals were reversed...
        assert ex.arrival_log[:n_workers] == list(
            range(n_workers - 1, -1, -1))
        # ...but each round committed lo-ascending (shard order)
        per_round = [merge_spans[i:i + n_workers]
                     for i in range(0, len(merge_spans), n_workers)]
        for spans in per_round:
            los = [s.meta["lo"] for s in spans]
            assert los == sorted(los)

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_out_of_order_combine_rejected(self, x, executor):
        """The worker enforces the continuation contract: a seed state
        that does not stop exactly at the combine range's lo is a
        ValueError — marshalled back intact on the process backend."""
        cfg = _cfg(executor=executor)
        plan = ShardPlan.build(M, 2, 256)
        ex = make_executor(executor)
        ex.start(partial(build_worker, x=x, plan=plan, cfg=cfg,
                         n_clusters=K, export_state=True),
                 plan.worker_ids)
        try:
            ex.send_round(x[:K].copy(), 1, {})
            results = {wid: r for wid, r in ex.collect_round_stream()}
            good = results[plan.shards[0].worker_id].state
            bad = dict(good)
            bad["hi"] = int(good["hi"]) + 3          # not a continuation
            step = combine_schedule(plan)[0]
            with pytest.raises(ValueError, match="out-of-order combine"):
                ex.combine(step.owner_id, bad, step.lo, step.hi, 1)
            # the good seed is accepted on the very same worker
            out = ex.combine(step.owner_id, good, step.lo, step.hi, 1)
            assert int(out["hi"]) == step.hi
        finally:
            ex.shutdown()


class TestCombineSchedule:
    def _plan(self, n_workers, m=M):
        return ShardPlan.build(m, n_workers, 256)

    def test_single_shard_needs_no_combine(self):
        assert combine_schedule(self._plan(1)) == ()

    @pytest.mark.parametrize("n_workers", [2, 3, 5, 8])
    def test_left_spine_invariants(self, n_workers):
        plan = self._plan(n_workers)
        steps = combine_schedule(plan)
        w = plan.n_workers
        assert len(steps) == max(0, (w - 1).bit_length())
        prefix_hi = plan.shards[0].hi
        prefix_shards = 1
        for step in steps:
            # each level extends the prefix exactly where it stopped
            assert step.lo == prefix_hi
            assert step.prefix_shards == prefix_shards
            right = [s for s in plan.shards if step.lo <= s.lo < step.hi]
            assert right, "combine range must cover whole shards"
            assert step.owner_id == min(s.worker_id for s in right)
            prefix_hi = step.hi
            prefix_shards += len(right)
        assert prefix_hi == plan.shards[-1].hi

    def test_level_one_owner_folds_own_shard_only(self):
        plan = self._plan(4)
        first = combine_schedule(plan)[0]
        owner = plan.shards[1]
        assert first.level == 1
        assert (first.lo, first.hi) == (owner.lo, owner.hi)


class TestStateTransfer:
    """export_state / load_state / merge_from: the continuation fold is
    bit-equal to the straight fold, and non-continuations are typed
    rejections."""

    def _fold(self, x, labels):
        acc = StreamedAccumulator(K, x.shape[1])
        acc.feed(x, labels)
        return acc.packed()

    def test_continuation_hops_bit_equal_to_straight_fold(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(301, 6)).astype(np.float32)
        labels = rng.integers(0, K, size=301).astype(np.int32)
        straight = self._fold(x, labels)
        a = StreamedAccumulator(K, 6)
        a.feed(x[:100], labels[:100])
        b = StreamedAccumulator(K, 6)
        b.load_state(a.export_state())
        b.feed(x[100:240], labels[100:240])
        c = StreamedAccumulator(K, 6)
        c.load_state(b.export_state())
        c.feed(x[240:], labels[240:])
        adopter = StreamedAccumulator(K, 6)
        adopter.merge_from(c.export_state())
        assert np.array_equal(straight.view(np.uint64),
                              adopter.packed().view(np.uint64))

    def test_merge_from_rejects_wrong_origin(self):
        a = StreamedAccumulator(K, 6)
        state = a.export_state()
        state["lo"] = 7
        b = StreamedAccumulator(K, 6)
        with pytest.raises(ValueError, match="chain origin"):
            b.merge_from(state)

    def test_merge_from_rejects_backwards_window(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(64, 6)).astype(np.float32)
        labels = np.zeros(64, dtype=np.int32)
        a = StreamedAccumulator(K, 6)
        a.feed(x, labels)
        short = StreamedAccumulator(K, 6)
        short.feed(x[:32], labels[:32])
        with pytest.raises(ValueError, match="out of order"):
            a.merge_from(short.export_state())

    def test_load_state_rejects_shape_mismatch(self):
        a = StreamedAccumulator(K, 6)
        b = StreamedAccumulator(K, 9)
        with pytest.raises(ValueError, match="shape"):
            b.load_state(a.export_state())


class TestReduceOccupancy:
    def test_segments_hidden_by_arrivals_cost_nothing(self):
        occ = ReduceOccupancy()
        occ.begin_round()
        occ.segment(0.0)          # entirely before the last arrival
        occ.arrival()
        occ.end_round()
        assert occ.busy_s == 0.0

    def test_post_arrival_work_counts(self):
        occ = ReduceOccupancy()
        occ.begin_round()
        occ.arrival()
        import time
        t0 = time.monotonic()
        while time.monotonic() - t0 < 0.002:
            pass
        occ.segment(t0)
        occ.end_round()
        assert occ.busy_s >= 0.002

    def test_discarded_round_not_counted_without_end_round(self):
        occ = ReduceOccupancy()
        occ.begin_round()
        occ.segment(0.0)
        occ.begin_round()          # recovery path: round discarded
        occ.end_round()
        assert occ.busy_s == 0.0


class TestChromeTrace:
    def test_spans_export_as_complete_events(self):
        ticks = iter(range(100))
        tr = TraceRecorder(clock=lambda: next(ticks) * 1e-3)
        with tr.span("fit"):
            with tr.span("round", iteration=2):
                pass
        doc = json.loads(tr.to_chrome_trace())
        assert doc["displayTimeUnit"] == "ms"
        events = {e["name"]: e for e in doc["traceEvents"]}
        assert set(events) == {"fit", "round"}
        for e in doc["traceEvents"]:
            assert e["ph"] == "X"
            assert e["dur"] > 0
        assert events["round"]["args"] == {"iteration": 2}
        # timestamps are microseconds on the recorder clock
        assert events["round"]["ts"] == pytest.approx(1e3)

    def test_file_handle_mode(self, tmp_path):
        tr = TraceRecorder()
        with tr.span("fit"):
            pass
        out = tmp_path / "trace.json"
        with open(out, "w") as fh:
            assert tr.to_chrome_trace(fh) == ""
        assert json.loads(out.read_text())["traceEvents"]


class TestConfigResolution:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="reduce_topology"):
            KMeansConfig(n_clusters=4, reduce_topology="ring")

    def test_auto_thresholds(self):
        cfg = KMeansConfig(n_clusters=4, reduce_topology="auto")
        assert cfg.resolved_reduce_topology(1) == "star"
        assert cfg.resolved_reduce_topology(2) == "star"
        assert cfg.resolved_reduce_topology(3) == "stream"
        assert cfg.resolved_reduce_topology(7) == "stream"
        assert cfg.resolved_reduce_topology(8) == "tree"

    def test_explicit_topology_verbatim(self):
        cfg = KMeansConfig(n_clusters=4, reduce_topology="star")
        assert cfg.resolved_reduce_topology(64) == "star"

    def test_defaults_to_configured_worker_count(self):
        cfg = KMeansConfig(n_clusters=4, n_workers=8,
                           reduce_topology="auto")
        assert cfg.resolved_reduce_topology() == "tree"


class TestEstimatorSurface:
    def test_fitted_attrs_and_metrics_delta(self, x, ref):
        km = fit(x, n_workers=8, executor="serial", reduce_topology="tree")
        assert_same_fit(km, ref)
        assert km.dist_reduce_topology_ == "tree"
        assert km.dist_reduce_busy_s_ >= 0.0
        assert isinstance(km.dist_metrics_, dict)
        assert km.dist_metrics_["dist.reduce_busy_s"] == pytest.approx(
            km.dist_reduce_busy_s_)
        assert km.dist_metrics_["dist.n_iter"] == km.n_iter_
        # the per-fit delta carries the simulator counters too
        assert any(name.startswith("sim.") for name in km.dist_metrics_)

    def test_auto_resolves_per_effective_fleet(self, x):
        # the GEMM-unit clamp can shrink the effective fleet below the
        # request; 'auto' must resolve against what actually ran
        km = fit(x, n_workers=3, executor="serial")
        assert km.dist_reduce_topology_ == "stream"
