"""sample_weight: bit-exact weighted accumulation, shard merges, and
equivalence with sample duplication."""

import numpy as np
import pytest

from repro import FTKMeans
from repro.core.accumulate import (
    StreamedAccumulator,
    accumulate_oneshot,
    accumulate_streamed,
)


@pytest.fixture(scope="module")
def wdata():
    rng = np.random.default_rng(5)
    x = rng.random((3000, 16)).astype(np.float32)
    labels = rng.integers(0, 9, 3000)
    w = rng.random(3000)
    return x, labels, w


class TestWeightedAccumulation:
    @pytest.mark.parametrize("feed_rows", [1, 7, 128, 1000, 5000])
    def test_streamed_matches_oneshot_bitwise(self, wdata, feed_rows):
        x, labels, w = wdata
        ref = accumulate_oneshot(x, labels, 9, sample_weight=w)
        got = accumulate_streamed(x, labels, 9, feed_rows=feed_rows,
                                  sample_weight=w)
        assert np.array_equal(got, ref)

    def test_unit_weights_equal_unweighted_bitwise(self, wdata):
        x, labels, _ = wdata
        ref = accumulate_oneshot(x, labels, 9)
        got = accumulate_oneshot(x, labels, 9,
                                 sample_weight=np.ones(x.shape[0]))
        assert np.array_equal(got, ref)

    def test_shard_merge_continuation_is_bit_exact(self, wdata):
        # feeding shard slices into one accumulator == the sequential
        # one-shot pass, no matter where the shard boundaries fall —
        # the coordinator's merge contract
        x, labels, w = wdata
        ref = accumulate_oneshot(x, labels, 9, sample_weight=w)
        for bounds in ([0, 1000, 3000], [0, 256, 512, 2048, 3000]):
            acc = StreamedAccumulator(9, x.shape[1])
            acc.bind_weights(w)
            for lo, hi in zip(bounds, bounds[1:]):
                acc.feed(x[lo:hi], labels[lo:hi])
            assert np.array_equal(acc.packed(), ref)

    def test_feed_past_bound_weights_raises(self, wdata):
        x, labels, w = wdata
        acc = StreamedAccumulator(9, x.shape[1])
        acc.bind_weights(w[:100])
        with pytest.raises(ValueError, match="past bound weights"):
            acc.feed(x[:200], labels[:200])


class TestWeightedEstimator:
    def test_weighted_sharded_fit_bit_identical(self, wdata):
        x, _, w = wdata
        ref = FTKMeans(n_clusters=6, seed=0, max_iter=8).fit(
            x, sample_weight=w)
        km = FTKMeans(n_clusters=6, seed=0, max_iter=8, n_workers=3).fit(
            x, sample_weight=w)
        assert np.array_equal(km.cluster_centers_, ref.cluster_centers_)
        assert np.array_equal(km.labels_, ref.labels_)
        assert km.inertia_ == ref.inertia_

    def test_integer_weights_equivalent_to_duplication(self):
        rng = np.random.default_rng(2)
        x = rng.random((400, 8))
        w = rng.integers(1, 4, 400).astype(np.float64)
        xd = np.repeat(x, w.astype(int), axis=0)
        kw = dict(n_clusters=5, dtype="float64", use_tf32=False, seed=0,
                  max_iter=10, init_centroids=x[:5].copy())
        a = FTKMeans(**kw).fit(x, sample_weight=w)
        b = FTKMeans(**kw).fit(xd)
        # association differs (w*x vs repeated adds): allclose, not
        # bitwise
        np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_,
                                   rtol=1e-9, atol=1e-12)

    def test_weighted_inertia_is_weighted_sum(self, wdata):
        x, _, w = wdata
        x64 = x.astype(np.float64)
        c0 = x64[:6].copy()
        km = FTKMeans(n_clusters=6, dtype="float64", use_tf32=False,
                      seed=0, max_iter=1, init_centroids=c0).fit(
            x64, sample_weight=w)
        # one iteration: inertia_ is the weighted assignment against c0
        d2 = np.sum((x64 - c0[km.labels_]) ** 2, axis=1)
        manual = float(np.sum(w * np.maximum(d2, 0)))
        assert km.inertia_ == pytest.approx(manual, rel=1e-9)

    def test_weighted_counts_are_float(self, wdata):
        x, _, w = wdata
        km = FTKMeans(n_clusters=6, seed=0, max_iter=3).fit(
            x, sample_weight=w)
        assert km.cluster_counts_.dtype == np.float64
        assert km.cluster_counts_.sum() == pytest.approx(w.sum())

    def test_partial_fit_weighted_stream(self, wdata):
        x, _, w = wdata
        km = FTKMeans(n_clusters=4, seed=0)
        for lo in range(0, 1024, 256):
            km.partial_fit(x[lo:lo + 256], sample_weight=w[lo:lo + 256])
        assert km.n_batches_seen_ == 4
        assert km.cluster_counts_.dtype == np.float64

    def test_zero_weights_drop_samples_from_sums(self):
        rng = np.random.default_rng(3)
        x = rng.random((200, 4)).astype(np.float32)
        w = np.ones(200)
        w[100:] = 0.0
        labels = np.zeros(200, dtype=np.int64)
        sums = accumulate_oneshot(x, labels, 1, sample_weight=w)
        ref = accumulate_oneshot(x[:100], labels[:100], 1)
        np.testing.assert_allclose(sums, ref, rtol=1e-12)

    def test_rejects_bad_weights(self, wdata):
        x, _, _ = wdata
        km = FTKMeans(n_clusters=4, seed=0)
        with pytest.raises(ValueError, match="sample_weight"):
            km.fit(x, sample_weight=np.ones(10))
        with pytest.raises(ValueError, match="negative"):
            km.fit(x, sample_weight=-np.ones(x.shape[0]))
        with pytest.raises(ValueError, match="NaN"):
            km.fit(x, sample_weight=np.full(x.shape[0], np.nan))
