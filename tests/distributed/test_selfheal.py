"""Self-healing membership: heartbeats catch wedged workers between
rounds, hot spares promote in place, a shrunken fleet re-expands back
to its target — and every membership history stays bit-identical to
the single-worker fit."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FTKMeans
from repro.core.variants import build_assignment
from repro.core.config import KMeansConfig
from repro.core.engine import transpose_blocked
from repro.core.update import UpdateStage
from repro.dist import (
    CheckpointStore,
    Coordinator,
    FleetManager,
    WorkerCacheStore,
    WorkerFaultInjector,
    WorkerFaultPlan,
    make_executor,
)
from repro.dist.faults import CRASH, STALL, WEDGE
from repro.gpusim.counters import PerfCounters

M, N_FEATURES, K = 1537, 12, 7

#: tight heartbeat cadence: every round boundary sweeps (the rate
#: limiter compares against monotonic seconds; in-process rounds are
#: ~1 ms, so the interval must sit well below one round)
HEARTBEAT = 0.0005

#: a serial ping blocks the coordinator thread for the whole wedge, so
#: wedges stay short on the in-process backends
SHORT_WEDGE = 0.5


class _PingWorker:
    """Minimal round + heartbeat protocol for executor-level tests."""

    def __init__(self, wid):
        self.wid = wid

    def run_round(self, y, iteration, directive):
        return ("ok", self.wid, iteration)

    def ping(self):
        return True

    def close(self):
        pass


def _ping_factory(wid):
    return _PingWorker(wid)


class _SleepyWorker(_PingWorker):
    """Sleeps on directive — a worker wedged mid-round."""

    def run_round(self, y, iteration, directive):
        import time

        if directive and "sleep_s" in directive:
            time.sleep(directive["sleep_s"])
        return ("ok", self.wid, iteration)


def _sleepy_factory(wid):
    return _SleepyWorker(wid)


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)


@pytest.fixture(scope="module")
def ref(x):
    return fit(x)


def fit(x, **kw):
    base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=10)
    base.update(kw)
    return FTKMeans(**base).fit(x)


def assert_same_fit(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
    assert a.inertia_ == b.inertia_
    assert a.n_iter_ == b.n_iter_
    assert a.inertia_history_ == b.inertia_history_


class TestHeartbeat:
    """A worker that answers its round and then wedges is invisible to
    the round deadline until the *next* round blows it; the heartbeat
    catches it between rounds instead."""

    def test_process_wedge_caught_by_heartbeat(self, x, ref):
        # the wedge sleeps 600 s — without the heartbeat the fit would
        # stall a full round deadline (or forever with none configured)
        km = fit(x, n_workers=2, executor="process", checkpoint_every=2,
                 elastic=True, heartbeat_interval=HEARTBEAT,
                 worker_faults=WorkerFaultInjector.wedge_at(0, 3))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.dist_heartbeat_failures_ == 1
        hb = [e for e in km.dist_trace_
              if e.get("detector") == "heartbeat"]
        assert hb and hb[0]["worker"] == 0

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_in_process_wedge_caught_by_heartbeat(self, x, ref, executor):
        km = fit(x, n_workers=2, executor=executor, checkpoint_every=2,
                 elastic=True, heartbeat_interval=HEARTBEAT,
                 worker_faults=WorkerFaultInjector.wedge_at(
                     1, 3, wedge_s=SHORT_WEDGE))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 1
        assert km.dist_heartbeat_failures_ == 1

    def test_heartbeat_detection_beats_round_deadline(self, x, ref):
        # generous round deadline (5 s): the deadline alone would burn
        # it all before classifying; the heartbeat evicts the wedge in
        # well under half that
        import time

        t0 = time.perf_counter()
        km = fit(x, n_workers=2, executor="process", checkpoint_every=2,
                 elastic=True, round_timeout=5.0,
                 heartbeat_interval=HEARTBEAT,
                 worker_faults=WorkerFaultInjector.wedge_at(0, 3))
        wall = time.perf_counter() - t0
        assert_same_fit(km, ref)
        assert km.dist_heartbeat_failures_ == 1
        assert wall < 4.0

    def test_heartbeat_requires_no_round_in_flight(self):
        ex = make_executor("process")
        ex.start(_ping_factory, (0, 1))
        try:
            ex.send_round(np.zeros(4), 1, {})
            with pytest.raises(RuntimeError):
                ex.heartbeat(1, 0.5)
            ex.collect_round()
            ex.heartbeat(1, 0.5)       # idle: fine
        finally:
            ex.shutdown()

    def test_rate_limiter_skips_sweeps_inside_interval(self):
        import time

        calls = []

        class _Ex:
            def heartbeat(self, iteration, timeout):
                calls.append((iteration, timeout))

        mgr = FleetManager(heartbeat_interval=3600.0)
        mgr.executor = _Ex()
        mgr._last_beat = time.monotonic() - 7200   # interval elapsed
        mgr.maybe_heartbeat(1)
        mgr.maybe_heartbeat(2)
        mgr.maybe_heartbeat(3)
        assert len(calls) == 1             # one sweep per hour, not three
        assert calls[0][1] == 3600.0       # timeout == max(0.2, interval)

    def test_disabled_heartbeat_never_touches_executor(self):
        mgr = FleetManager(hot_spares=0)
        mgr.executor = object()            # would explode if pinged
        mgr.maybe_heartbeat(1)


class TestHotSpares:
    """Pre-booted spares turn worker loss into an in-place promotion:
    the plan never changes and the survivors keep running."""

    @staticmethod
    def _await_spares(ex, n, budget_s=30.0):
        import time

        deadline = time.monotonic() + budget_s
        while ex.spares_ready() < n and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ex.spares_ready() >= n

    def test_prewarm_and_promote_executor_level(self):
        ex = make_executor("process")
        ex.start(_ping_factory, (0, 1, 2))
        try:
            ex.prewarm_spares(2)
            self._await_spares(ex, 2)
            ex._kill_worker(1)             # simulate a death
            ex.replace_workers(_ping_factory, [1])
            out = ex.run_round(np.zeros(4), 5, {})
            assert [r[:2] for r in out] == [("ok", 0), ("ok", 1), ("ok", 2)]
            assert ex.spares_ready() == 1  # one spare was consumed
        finally:
            ex.shutdown()

    def test_crash_with_spare_promotes_in_place(self, x):
        # the spare is provisioned and *awaited* before the fit starts,
        # so the promote/shrink decision at the crash is deterministic
        ex = make_executor("process")
        ex.prewarm_spares(1)
        self._await_spares(ex, 1)
        y0 = x[:K].copy()
        ref0 = FTKMeans(n_clusters=K, variant="tensorop", seed=3,
                        max_iter=10, init_centroids=y0).fit(x)
        cfg = KMeansConfig(n_clusters=K, n_workers=2, seed=3, max_iter=10,
                           checkpoint_every=2, hot_spares=1)
        coord = Coordinator(
            cfg, executor=ex,
            worker_faults=WorkerFaultInjector.crash_at(0, 3))
        res = coord.fit(x, y0)
        assert np.array_equal(res.centroids, ref0.cluster_centers_)
        assert res.plan.n_workers == 2     # never shrank
        assert res.promotions == 1
        assert res.expands == 0 and res.shrinks == 0
        kinds = [e["kind"] for e in res.trace]
        assert kinds == ["crash", "restore", "promote"]

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_in_process_spare_tokens_promote(self, x, ref, executor):
        # in-process backends model spares as promotion tokens; the
        # promote path (rebuild dead ids only, plan unchanged) is
        # identical
        km = fit(x, n_workers=3, executor=executor, checkpoint_every=2,
                 hot_spares=1,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3
        assert km.dist_promotions_ == 1

    def test_exhausted_spares_fall_back_to_shrink_expand(self, x, ref):
        # two losses, one spare: the first promotes, the second finds
        # the pool still re-warming or empty and shrinks — then regrows
        faults = WorkerFaultInjector([WorkerFaultPlan(CRASH, 0, 3),
                                      WorkerFaultPlan(CRASH, 1, 5)])
        km = fit(x, n_workers=3, executor="serial", checkpoint_every=2,
                 hot_spares=1, target_workers=3, worker_faults=faults)
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3          # back at target either way
        assert km.dist_promotions_ + km.dist_expands_ >= 2


class TestSpawnReExpand:
    """The acceptance scenario: kill -> shrink -> spawn -> re-expand ->
    converge, finishing at the original target fleet size."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_kill_then_reexpand_to_target(self, x, ref, executor):
        km = fit(x, n_workers=3, executor=executor, checkpoint_every=2,
                 target_workers=3,
                 worker_faults=WorkerFaultInjector.crash_at(1, 4))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3          # re-expanded, not shrunk
        assert km.dist_expands_ == 1
        kinds = [e["kind"] for e in km.dist_trace_]
        assert kinds == ["crash", "restore", "shrink", "expand"]
        (expand,) = [e for e in km.dist_trace_ if e["kind"] == "expand"]
        assert expand["members"] == [0, 1, 2]   # original ids restored

    def test_spawn_hook_gates_expansion(self, x, ref):
        asked = []

        def hook(n):
            asked.append(n)
            return 0                       # budget: no new workers

        y0 = x[:K].copy()
        ref0 = FTKMeans(n_clusters=K, variant="tensorop", seed=3,
                        max_iter=10, init_centroids=y0).fit(x)
        cfg = KMeansConfig(n_clusters=K, n_workers=3, seed=3, max_iter=10,
                           checkpoint_every=2, target_workers=3)
        coord = Coordinator(
            cfg, spawn_hook=hook,
            worker_faults=WorkerFaultInjector.crash_at(1, 4))
        res = coord.fit(x, y0)
        assert np.array_equal(res.centroids, ref0.cluster_centers_)
        assert res.plan.n_workers == 2     # expansion suppressed ...
        assert res.expands == 0
        assert asked and all(n == 1 for n in asked)   # ... but asked for

    def test_spawn_hook_never_consulted_for_promotion(self, x):
        def hook(n):
            raise AssertionError("promotion must not consult spawn_hook")

        y0 = x[:K].copy()
        cfg = KMeansConfig(n_clusters=K, n_workers=2, seed=3, max_iter=10,
                           checkpoint_every=2, hot_spares=1)
        coord = Coordinator(
            cfg, spawn_hook=hook, executor="serial",
            worker_faults=WorkerFaultInjector.crash_at(0, 3))
        res = coord.fit(x, y0)
        assert res.promotions == 1

    def test_kill_spawn_recovery_reuses_worker_cache(self, x, tmp_path):
        # the subprocess acceptance test: a killed worker's replacement
        # boots onto the same shard rows and preloads the operand-cache
        # checkpoint the dead worker wrote at its own boot
        y0 = x[:K].copy()
        ref0 = FTKMeans(n_clusters=K, variant="tensorop", seed=3,
                        max_iter=10, init_centroids=y0).fit(x)
        cfg = KMeansConfig(n_clusters=K, n_workers=2, seed=3, max_iter=10,
                           checkpoint_every=2, target_workers=2,
                           executor="process")
        coord = Coordinator(
            cfg, checkpoint=CheckpointStore(tmp_path),
            worker_faults=WorkerFaultInjector.crash_at(0, 3))
        assert coord.worker_cache is not None     # derived from the dir
        res = coord.fit(x, y0)
        assert np.array_equal(res.centroids, ref0.cluster_centers_)
        assert res.plan.n_workers == 2
        assert res.expands + res.promotions >= 1
        # each shard checkpointed its light operands at first boot
        light = sorted(p.name for p in
                       (tmp_path / "worker_cache").glob("shard_*.npz"))
        assert len(light) >= 2

    def test_worker_cache_hits_on_shared_store(self, x):
        # serial backend shares the store object, so the hit counters
        # are observable: the respawned worker's boot must be a hit
        y0 = x[:K].copy()
        store = WorkerCacheStore()
        cfg = KMeansConfig(n_clusters=K, n_workers=2, seed=3, max_iter=10,
                           checkpoint_every=2, target_workers=2,
                           executor="serial")
        coord = Coordinator(
            cfg, worker_cache=store,
            worker_faults=WorkerFaultInjector.crash_at(0, 3))
        coord.fit(x, y0)
        assert store.hits >= 1             # replacement preloaded
        assert store.misses >= 2           # first boots missed


# -- random membership histories --------------------------------------

_FAULTS = st.lists(
    st.tuples(st.sampled_from([CRASH, STALL, WEDGE]),
              st.integers(min_value=0, max_value=2),
              st.integers(min_value=2, max_value=8)),
    min_size=0, max_size=2, unique_by=lambda t: (t[1], t[2]))


def _injector(history):
    plans = []
    for kind, wid, it in history:
        if kind == STALL:
            plans.append(WorkerFaultPlan(STALL, wid, it, stall_s=0.6))
        elif kind == WEDGE:
            plans.append(WorkerFaultPlan(WEDGE, wid, it,
                                         wedge_s=SHORT_WEDGE))
        else:
            plans.append(WorkerFaultPlan(CRASH, wid, it))
    return WorkerFaultInjector(plans)


class TestMembershipHistoryProperty:
    """Hypothesis: ANY interleaving of kills, stalls and wedges —
    promoted, shrunk, re-expanded, possibly repeatedly — produces the
    single-worker fit bit for bit."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(history=_FAULTS, hot_spares=st.integers(0, 1))
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_in_process_histories_bit_identical(self, x, ref, executor,
                                                history, hot_spares):
        km = fit(x, n_workers=3, executor=executor, checkpoint_every=2,
                 target_workers=3, hot_spares=hot_spares,
                 round_timeout=0.15, heartbeat_interval=HEARTBEAT,
                 worker_faults=_injector(history))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3          # always healed back to target

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(history=st.lists(
        st.tuples(st.sampled_from([CRASH, WEDGE]),
                  st.integers(min_value=0, max_value=2),
                  st.integers(min_value=2, max_value=8)),
        min_size=1, max_size=2, unique_by=lambda t: (t[1], t[2])))
    def test_process_histories_bit_identical(self, x, ref, history):
        km = fit(x, n_workers=3, executor="process", checkpoint_every=2,
                 target_workers=3, hot_spares=1,
                 heartbeat_interval=HEARTBEAT,
                 worker_faults=_injector(history))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3


class TestWorkerCacheStore:
    def _operands(self, rng, m=64, n=8):
        x = rng.random((m, n), dtype=np.float64).astype(np.float32)
        return {"x_norms": np.sum(x * x, axis=1, dtype=np.float32),
                "x_rounded": x.copy(), "x_t": transpose_blocked(x)}

    @pytest.mark.parametrize("backed", ["memory", "disk"])
    def test_roundtrip_light_and_heavy(self, tmp_path, backed):
        store = WorkerCacheStore(tmp_path if backed == "disk" else None)
        ops = self._operands(np.random.default_rng(1))
        assert store.save("shard_0_64", ops) is True
        out = store.load("shard_0_64")
        assert set(out) == {"x_norms", "x_rounded", "x_t"}
        for k in out:
            assert np.array_equal(out[k], ops[k])
        assert store.hits == 1 and store.misses == 0

    def test_first_writer_wins(self, tmp_path):
        store = WorkerCacheStore(tmp_path)
        ops = self._operands(np.random.default_rng(1))
        assert store.save("shard_0_64", ops) is True
        other = self._operands(np.random.default_rng(2))
        assert store.save("shard_0_64", other) is False
        assert np.array_equal(store.load("shard_0_64")["x_norms"],
                              ops["x_norms"])

    def test_compaction_degrades_to_light(self, tmp_path):
        ops = self._operands(np.random.default_rng(1))
        store = WorkerCacheStore(tmp_path, budget_bytes=16)   # < one heavy
        assert store.save("shard_0_64", ops) is True
        out = store.load("shard_0_64")
        assert set(out) == {"x_norms"}     # heavy skipped, light kept

    @pytest.mark.parametrize("backed", ["memory", "disk"])
    def test_eviction_is_oldest_first(self, tmp_path, backed):
        import time

        rng = np.random.default_rng(1)
        a, b = self._operands(rng), self._operands(rng)
        heavy = sum(a[k].nbytes for k in ("x_rounded", "x_t"))
        store = WorkerCacheStore(
            tmp_path if backed == "disk" else None,
            budget_bytes=heavy + heavy // 2)   # fits one heavy, not two
        store.save("shard_0_64", a)
        if backed == "disk":
            time.sleep(0.02)               # mtime resolution
        store.save("shard_64_128", b)
        assert store.evictions >= 1
        assert set(store.load("shard_0_64")) == {"x_norms"}   # evicted
        assert set(store.load("shard_64_128")) == {
            "x_norms", "x_rounded", "x_t"}

    def test_empty_or_lightless_saves_are_skipped(self, tmp_path):
        store = WorkerCacheStore(tmp_path)
        assert store.save("k", {}) is False
        assert store.save("k", {"x_t": np.zeros((2, 2))}) is False
        assert store.load("k") is None
        assert store.misses == 1

    def test_clear_empties_both_tiers(self, tmp_path):
        store = WorkerCacheStore(tmp_path)
        store.save("shard_0_64", self._operands(np.random.default_rng(1)))
        store.clear()
        assert store.load("shard_0_64") is None
        assert list(tmp_path.glob("*.npz")) == []

    @pytest.mark.parametrize("backed", ["memory", "disk"])
    def test_refresh_is_lazy_while_entry_is_warm(self, tmp_path, backed):
        store = WorkerCacheStore(tmp_path if backed == "disk" else None)
        ops = self._operands(np.random.default_rng(1))
        store.save("shard_0_64", ops)
        calls = []
        assert store.refresh(
            "shard_0_64", lambda: calls.append(1) or ops) is False
        assert calls == []                 # payload never built

    def test_refresh_resaves_an_evicted_entry(self, tmp_path):
        store = WorkerCacheStore(tmp_path)
        ops = self._operands(np.random.default_rng(1))
        store.save("shard_0_64", ops)
        store.flush()
        for p in tmp_path.glob("*.npz"):   # compaction / operator wipe
            p.unlink()
        fresh = WorkerCacheStore(tmp_path)
        assert fresh.refresh("shard_0_64", lambda: dict(ops)) is True
        out = fresh.load("shard_0_64")
        assert out is not None
        assert np.array_equal(out["x_norms"], ops["x_norms"])

    def test_async_default_and_pickled_copy_sheds_writer(self, tmp_path):
        import pickle

        assert WorkerCacheStore(tmp_path).sync is False
        assert WorkerCacheStore().sync is True       # in-memory: no I/O
        store = WorkerCacheStore(tmp_path)
        store.save("shard_0_64", self._operands(np.random.default_rng(1)))
        clone = pickle.loads(pickle.dumps(store))
        assert clone._writer is None and clone._queued == set()
        store.flush()
        assert clone.load("shard_0_64") is not None

    def test_queued_save_keeps_first_writer_wins(self, tmp_path):
        store = WorkerCacheStore(tmp_path)
        a = self._operands(np.random.default_rng(1))
        b = self._operands(np.random.default_rng(2))
        assert store.save("shard_0_64", a) is True
        # second save lands inside the async in-flight window
        assert store.save("shard_0_64", b) is False
        assert np.array_equal(store.load("shard_0_64")["x_norms"],
                              a["x_norms"])

    def test_failed_write_is_counted_not_raised(self, tmp_path):
        import pathlib

        store = WorkerCacheStore(tmp_path)
        store.directory = pathlib.Path(tmp_path) / "vanished"
        store.save("shard_0_64", self._operands(np.random.default_rng(1)))
        store.flush()                      # must not raise
        assert store.write_errors >= 1


class TestOperandHoist:
    """Satellites: the blocked transpose and the update stage's bound
    operand are pure layout changes — bits never move."""

    @pytest.mark.parametrize("shape", [(1, 1), (7, 3), (1024, 12),
                                       (5000, 64), (1537, 7)])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_transpose_blocked_matches_plain_transpose(self, shape, dtype):
        rng = np.random.default_rng(0)
        x = rng.random(shape).astype(dtype)
        out = transpose_blocked(x)
        assert out.flags["C_CONTIGUOUS"]
        assert out.dtype == x.dtype
        assert np.array_equal(out, np.ascontiguousarray(x.T))

    @staticmethod
    def _run_update(x, labels, *, bind_to=None, x_t=None):
        device = KMeansConfig(n_clusters=K).device
        stage = UpdateStage(device, np.float32, update_mode="streamed")
        if bind_to is not None:
            stage.bind_source_t(bind_to, x_t)
        res = stage.update(x, labels.copy(),
                           np.zeros(len(x), np.float32), x[:K].copy(),
                           PerfCounters())
        return res.centroids

    def test_update_stage_bound_operand_bits_identical(self):
        # the DMR duplicate re-accumulation reads the bound transposed
        # operand instead of re-transposing per chunk — same bits
        rng = np.random.default_rng(2)
        x = rng.random((997, 9), dtype=np.float64).astype(np.float32)
        labels = rng.integers(0, K, size=997)
        plain = self._run_update(x, labels)
        bound = self._run_update(x, labels, bind_to=x,
                                 x_t=transpose_blocked(x))
        assert np.array_equal(plain, bound)

    def test_bound_operand_ignored_for_other_arrays(self):
        # identity guard: a *different* array (equal bytes, different
        # object) must take the legacy path, not read the stale
        # operand — binding a poisoned x_t for x must not change the
        # result of updating over a copy of x
        rng = np.random.default_rng(3)
        x = rng.random((512, 8), dtype=np.float64).astype(np.float32)
        other = x.copy()
        labels = rng.integers(0, K, size=512)
        plain = self._run_update(other, labels)
        guarded = self._run_update(
            other, labels, bind_to=x,
            x_t=np.zeros_like(transpose_blocked(x)))
        assert np.array_equal(plain, guarded)

    def test_engine_preload_roundtrip_and_rejection(self, x):
        cfg = KMeansConfig(n_clusters=K, variant="tensorop", seed=3)
        stage = build_assignment(cfg, M, N_FEATURES,
                                 np.random.default_rng(0))
        stage.begin_fit(x, K)
        stage.engine.prepare_update_operand()
        exported = {k: v.copy()
                    for k, v in stage.engine.export_operands().items()}
        assert "x_norms" in exported and "x_t" in exported

        fresh = build_assignment(cfg, M, N_FEATURES,
                                 np.random.default_rng(0))
        fresh.begin_fit(x, K, preload=exported)
        cache = fresh.engine._cache
        assert np.array_equal(cache.x_norms, exported["x_norms"])
        assert np.array_equal(cache.x_t, exported["x_t"])

        # wrong-shape / wrong-dtype candidates are silently rebuilt
        bad = {"x_norms": np.zeros(3, np.float32),
               "x_t": np.zeros((2, 2), np.float32)}
        rebuilt = build_assignment(cfg, M, N_FEATURES,
                                   np.random.default_rng(0))
        rebuilt.begin_fit(x, K, preload=bad)
        assert rebuilt.engine._cache.x_norms.shape == (M,)
        assert not np.array_equal(rebuilt.engine._cache.x_norms,
                                  np.zeros(M, np.float32))
        assert rebuilt.engine._cache.x_t is None   # rebuilt lazily


class TestCancelRound:
    """Executor-level cancel of the speculative in-flight round."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_cancel_then_restart_runs_clean(self, executor):
        ex = make_executor(executor)
        ex.start(_ping_factory, (0, 1))
        try:
            ex.send_round(np.zeros(4), 1, {})
            ex.cancel_round()
            ex.restart(_ping_factory, (0, 1))
            out = ex.run_round(np.zeros(4), 2, {})
            assert [r[2] for r in out] == [2, 2]   # no stale round 1
        finally:
            ex.shutdown()

    def test_cancel_abandons_wedged_round_quickly(self):
        # the speculative round the cancel abandons holds a worker that
        # would sleep 600 s: cancel must kill, not drain, it
        import time

        ex = make_executor("process")
        ex.start(_sleepy_factory, (0, 1))
        try:
            ex.send_round(np.zeros(4), 1, {0: {"sleep_s": 600.0}})
            time.sleep(0.1)                # let the sleeper start
            t0 = time.monotonic()
            ex.cancel_round()
            ex.restart(_sleepy_factory, (0, 1))
            out = ex.run_round(np.zeros(4), 2, {})
            assert time.monotonic() - t0 < 15.0
            assert [r[2] for r in out] == [2, 2]
        finally:
            ex.shutdown()


class TestConfigValidation:
    def test_knob_bounds(self):
        with pytest.raises(ValueError):
            KMeansConfig(target_workers=0)
        with pytest.raises(ValueError):
            KMeansConfig(hot_spares=-1)
        with pytest.raises(ValueError):
            KMeansConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            KMeansConfig(n_workers=2, target_workers=3)

    def test_fleet_manager_bounds(self):
        with pytest.raises(ValueError):
            FleetManager(target_workers=0)
        with pytest.raises(ValueError):
            FleetManager(hot_spares=-1)
        with pytest.raises(ValueError):
            FleetManager(heartbeat_interval=-1.0)

    def test_knobs_reach_the_fleet(self):
        cfg = KMeansConfig(n_workers=3, target_workers=2, hot_spares=1,
                           heartbeat_interval=2.5)
        coord = Coordinator(cfg)
        assert coord.fleet.target_workers == 2
        assert coord.fleet.hot_spares == 1
        assert coord.fleet.heartbeat_interval == 2.5
        assert coord.fleet.manages_membership

    def test_default_fleet_is_inert(self):
        coord = Coordinator(KMeansConfig(n_workers=2))
        assert not coord.fleet.manages_membership

    def test_estimator_exposes_selfheal_attrs(self, x, ref):
        km = fit(x, n_workers=2, hot_spares=1, heartbeat_interval=5.0)
        assert_same_fit(km, ref)
        assert km.dist_promotions_ == 0
        assert km.dist_expands_ == 0
        assert km.dist_heartbeat_failures_ == 0
