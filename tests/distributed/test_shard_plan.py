"""ShardPlan: coverage, alignment, balance, clamping."""

import pytest

from repro.core.engine import GEMM_UNIT_ROWS, unit_rows_for_tile
from repro.core.tensorop import default_tensorop_tile
from repro.dist import ShardPlan


class TestBuild:
    def test_covers_all_rows_contiguously(self):
        plan = ShardPlan.build(100_000, 4, 256)
        assert plan.shards[0].lo == 0
        assert plan.shards[-1].hi == 100_000
        for a, b in zip(plan.shards, plan.shards[1:]):
            assert a.hi == b.lo

    @pytest.mark.parametrize("m", [256, 257, 1000, 4096, 100_001])
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_interior_boundaries_unit_aligned(self, m, workers):
        plan = ShardPlan.build(m, workers, 256)
        for shard in plan.shards[:-1]:
            assert shard.hi % 256 == 0
        assert sum(plan.shard_sizes()) == m
        assert all(s.rows > 0 for s in plan.shards)

    def test_balanced_in_units(self):
        plan = ShardPlan.build(10 * 256, 4, 256)
        # 10 units over 4 workers -> 3,3,2,2
        assert plan.shard_sizes() == (3 * 256, 3 * 256, 2 * 256, 2 * 256)

    def test_clamps_workers_to_units(self):
        plan = ShardPlan.build(300, 8, 256)   # only 2 whole units
        assert plan.n_workers == 2
        assert plan.shard_sizes() == (256, 44)

    def test_single_worker_single_shard(self):
        plan = ShardPlan.build(1000, 1, 256)
        assert plan.n_workers == 1
        assert plan.shards[0].slice == slice(0, 1000)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ShardPlan.build(0, 2, 256)
        with pytest.raises(ValueError):
            ShardPlan.build(100, 0, 256)
        with pytest.raises(ValueError):
            ShardPlan.build(100, 2, 0)


class TestReplan:
    """Elastic membership: the same rows, any member set, same grid."""

    def test_shrink_covers_rows_and_keeps_alignment(self):
        plan = ShardPlan.build(10 * 256 + 17, 4, 256)
        shrunk = plan.replan([0, 2, 3])          # worker 1 lost
        assert shrunk.n_workers == 3
        assert shrunk.shards[0].lo == 0
        assert shrunk.shards[-1].hi == plan.m
        for a, b in zip(shrunk.shards, shrunk.shards[1:]):
            assert a.hi == b.lo
        for shard in shrunk.shards[:-1]:
            assert shard.hi % 256 == 0

    def test_members_sorted_into_row_order(self):
        plan = ShardPlan.build(8 * 256, 4, 256)
        shrunk = plan.replan([3, 0, 2])
        assert shrunk.worker_ids == (0, 2, 3)    # ascending ids, row order
        assert [s.lo for s in shrunk.shards] == sorted(
            s.lo for s in shrunk.shards)

    def test_regrow_onto_more_members(self):
        plan = ShardPlan.build(8 * 256, 2, 256)
        grown = plan.replan([0, 1, 4, 5])
        assert grown.n_workers == 4
        assert grown.shard_sizes() == (2 * 256,) * 4

    def test_replan_clamps_to_units(self):
        plan = ShardPlan.build(300, 2, 256)      # 2 whole units
        assert plan.replan([5, 6, 7]).n_workers == 2

    def test_replan_rejects_empty_members(self):
        with pytest.raises(ValueError):
            ShardPlan.build(1000, 2, 256).replan([])

    def test_shard_of_sparse_ids(self):
        plan = ShardPlan.build(4 * 256, 4, 256).replan([1, 3])
        assert plan.shard_of(3).worker_id == 3
        assert plan.shard_of(1).rows == 2 * 256
        with pytest.raises(KeyError):
            plan.shard_of(0)


class TestUnitRows:
    def test_matches_engine_unit(self):
        tile = default_tensorop_tile("float32")
        unit = unit_rows_for_tile(tile)
        assert unit % tile.tb.m == 0
        assert unit >= GEMM_UNIT_ROWS - tile.tb.m + 1

    def test_none_tile_uses_default(self):
        assert unit_rows_for_tile(None) == GEMM_UNIT_ROWS
