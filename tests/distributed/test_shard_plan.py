"""ShardPlan: coverage, alignment, balance, clamping."""

import pytest

from repro.core.engine import GEMM_UNIT_ROWS, unit_rows_for_tile
from repro.core.tensorop import default_tensorop_tile
from repro.dist import ShardPlan


class TestBuild:
    def test_covers_all_rows_contiguously(self):
        plan = ShardPlan.build(100_000, 4, 256)
        assert plan.shards[0].lo == 0
        assert plan.shards[-1].hi == 100_000
        for a, b in zip(plan.shards, plan.shards[1:]):
            assert a.hi == b.lo

    @pytest.mark.parametrize("m", [256, 257, 1000, 4096, 100_001])
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_interior_boundaries_unit_aligned(self, m, workers):
        plan = ShardPlan.build(m, workers, 256)
        for shard in plan.shards[:-1]:
            assert shard.hi % 256 == 0
        assert sum(plan.shard_sizes()) == m
        assert all(s.rows > 0 for s in plan.shards)

    def test_balanced_in_units(self):
        plan = ShardPlan.build(10 * 256, 4, 256)
        # 10 units over 4 workers -> 3,3,2,2
        assert plan.shard_sizes() == (3 * 256, 3 * 256, 2 * 256, 2 * 256)

    def test_clamps_workers_to_units(self):
        plan = ShardPlan.build(300, 8, 256)   # only 2 whole units
        assert plan.n_workers == 2
        assert plan.shard_sizes() == (256, 44)

    def test_single_worker_single_shard(self):
        plan = ShardPlan.build(1000, 1, 256)
        assert plan.n_workers == 1
        assert plan.shards[0].slice == slice(0, 1000)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ShardPlan.build(0, 2, 256)
        with pytest.raises(ValueError):
            ShardPlan.build(100, 0, 256)
        with pytest.raises(ValueError):
            ShardPlan.build(100, 2, 0)


class TestUnitRows:
    def test_matches_engine_unit(self):
        tile = default_tensorop_tile("float32")
        unit = unit_rows_for_tile(tile)
        assert unit % tile.tb.m == 0
        assert unit >= GEMM_UNIT_ROWS - tile.tb.m + 1

    def test_none_tile_uses_default(self):
        assert unit_rows_for_tile(None) == GEMM_UNIT_ROWS
