"""Zero-copy shared-memory data plane: bit-identity against the pipe
transport for any topology × fleet × membership history, seqlock stamp
validation, pipe traffic demoted to control tokens, and kill-anywhere
segment cleanup of ``/dev/shm``."""

import os
import signal
import subprocess
import sys
import time
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FTKMeans
from repro.core.config import KMeansConfig
from repro.dist import WorkerFaultInjector, WorkerFaultPlan
from repro.dist.faults import CRASH, WEDGE
from repro.dist.shm import (
    SEGMENT_PREFIX,
    ShmSession,
    StaleGenerationError,
    attach_array,
    read_broadcast,
    write_slot,
)
from repro.obs.trace import TraceRecorder

M, N_FEATURES, K = 1537, 12, 7

HEARTBEAT = 0.0005
SHORT_WEDGE = 0.5


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((M, N_FEATURES), dtype=np.float64).astype(np.float32)


@pytest.fixture(scope="module")
def ref(x):
    return fit(x)


def fit(x, **kw):
    base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=10)
    base.update(kw)
    return FTKMeans(**base).fit(x)


def assert_same_fit(a, b):
    assert np.array_equal(a.labels_, b.labels_)
    assert np.array_equal(a.cluster_centers_, b.cluster_centers_)
    assert a.inertia_ == b.inertia_
    assert a.n_iter_ == b.n_iter_
    assert a.inertia_history_ == b.inertia_history_


def shm_entries(prefix=SEGMENT_PREFIX):
    try:
        return [e for e in os.listdir("/dev/shm") if e.startswith(prefix)]
    except OSError:  # pragma: no cover - non-Linux fallback
        return []


class TestConfigValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            KMeansConfig(transport="bogus")

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_explicit_shm_needs_process_executor(self, executor):
        with pytest.raises(ValueError, match="requires executor='process'"):
            KMeansConfig(transport="shm", executor=executor)

    def test_auto_resolution(self):
        cfg = KMeansConfig()
        assert cfg.resolved_transport("process") == "shm"
        assert cfg.resolved_transport("serial") == "pipe"
        assert cfg.resolved_transport("thread") == "pipe"
        pinned = KMeansConfig(transport="pipe", executor="process")
        assert pinned.resolved_transport("process") == "pipe"

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_in_process_fits_report_pipe(self, x, executor):
        km = fit(x, n_workers=2, executor=executor)
        assert km.dist_transport_ == "pipe"
        assert km.dist_broadcast_bytes_ == 0
        assert km.dist_gather_bytes_ == 0


class TestBitIdentity:
    """The shm fit must equal the pipe fit — and the single-worker
    fit — bit for bit; the zero-copy plane is a transport, not a
    numerics change."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_shm_equals_pipe_and_single(self, x, ref, workers):
        shm = fit(x, n_workers=workers, executor="process",
                  transport="shm")
        pipe = fit(x, n_workers=workers, executor="process",
                   transport="pipe")
        assert shm.dist_transport_ == "shm"
        assert pipe.dist_transport_ == "pipe"
        assert_same_fit(shm, pipe)
        assert_same_fit(shm, ref)

    def test_auto_resolves_to_shm_on_process(self, x, ref):
        km = fit(x, n_workers=2, executor="process")
        assert km.dist_transport_ == "shm"
        assert_same_fit(km, ref)

    def test_weighted_fit_bit_identical(self, x):
        rng = np.random.default_rng(7)
        w = rng.integers(1, 4, size=x.shape[0]).astype(np.float64)
        base = dict(n_clusters=K, variant="tensorop", seed=3, max_iter=10)
        single = FTKMeans(**base).fit(x, sample_weight=w)
        km = FTKMeans(**base, n_workers=3, executor="process",
                      transport="shm").fit(x, sample_weight=w)
        assert_same_fit(km, single)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(topology=st.sampled_from(["star", "stream", "tree"]),
           workers=st.integers(min_value=2, max_value=4))
    def test_topologies_bit_identical(self, x, ref, topology, workers):
        km = fit(x, n_workers=workers, executor="process",
                 transport="shm", reduce_topology=topology)
        assert_same_fit(km, ref)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(history=st.lists(
        st.tuples(st.sampled_from([CRASH, WEDGE]),
                  st.integers(min_value=0, max_value=2),
                  st.integers(min_value=2, max_value=8)),
        min_size=1, max_size=2, unique_by=lambda t: (t[1], t[2])))
    def test_membership_histories_bit_identical(self, x, ref, history):
        plans = [WorkerFaultPlan(kind, wid, it,
                                 wedge_s=SHORT_WEDGE if kind == WEDGE
                                 else 0.0)
                 for kind, wid, it in history]
        km = fit(x, n_workers=3, executor="process", transport="shm",
                 checkpoint_every=2, target_workers=3, hot_spares=1,
                 heartbeat_interval=HEARTBEAT,
                 worker_faults=WorkerFaultInjector(plans))
        assert_same_fit(km, ref)
        assert km.n_workers_ == 3


class TestByteCounters:
    """The pipes under shm carry control tokens, not payloads — and the
    counters land in the metrics registry and the span metadata."""

    def test_shm_moves_gather_off_the_pipes(self, x):
        pipe = fit(x, n_workers=3, executor="process", transport="pipe")
        shm = fit(x, n_workers=3, executor="process", transport="shm")
        assert pipe.dist_gather_bytes_ > 4 * shm.dist_gather_bytes_
        # labels alone dwarf any control token: the pipe gather must
        # account for them, the shm acks must stay token-sized
        assert pipe.dist_gather_bytes_ > M * 8
        rounds = shm.n_iter_ + 1
        assert shm.dist_gather_bytes_ / (rounds * 3) <= 4096

    def test_shm_broadcast_is_token_sized(self, x):
        shm = fit(x, n_workers=2, executor="process", transport="shm")
        rounds = shm.n_iter_ + 1
        assert shm.dist_broadcast_bytes_ / (rounds * 2) <= 4096

    def test_counters_reach_metrics_registry(self, x):
        km = fit(x, n_workers=2, executor="process", transport="shm")
        assert km.dist_metrics_["dist.broadcast_bytes"] == \
            km.dist_broadcast_bytes_
        assert km.dist_metrics_["dist.gather_bytes"] == \
            km.dist_gather_bytes_

    def test_spans_carry_payload_bytes(self, x):
        tr = TraceRecorder()
        km = fit(x, n_workers=2, executor="process", transport="shm",
                 tracer=tr)
        bcasts = [s for s in tr.spans if s.name == "broadcast"]
        gathers = [s for s in tr.spans if s.name == "gather"]
        assert bcasts and gathers
        assert all("payload_bytes" in s.meta for s in bcasts + gathers)
        assert sum(s.meta["payload_bytes"] for s in bcasts) == \
            km.dist_broadcast_bytes_


class TestSeqlock:
    """Generation stamps are validated on every read: a stale buffer is
    a hard :class:`StaleGenerationError`, never a silent wrong round."""

    def _session(self, rows=32, n=4, k=3):
        rng = np.random.default_rng(0)
        x = rng.random((rows, n), dtype=np.float64).astype(np.float32)
        return ShmSession(x), x

    def test_broadcast_round_trip_and_stale_rejected(self):
        sess, x = self._session()
        try:
            y = x[:3].astype(np.float32)
            ref, gen = sess.publish(y, iteration=0)
            assert np.array_equal(read_broadcast(ref, gen), y)
            with pytest.raises(StaleGenerationError, match="generation"):
                read_broadcast(ref, gen + 1)
            _, gen2 = sess.publish(y + 1, iteration=1)
            assert gen2 == gen + 1
            with pytest.raises(StaleGenerationError):
                read_broadcast(ref, gen)     # old token, new buffer
        finally:
            sess.close()

    def test_slot_round_trip_and_stale_rejected(self):
        sess, x = self._session()
        try:
            plan = SimpleNamespace(shards=[SimpleNamespace(
                worker_id=0, lo=0, hi=x.shape[0])])
            sess.make_slots(plan, n_clusters=3, n_features=4,
                            dtype=np.float32, with_state=True)
            result = SimpleNamespace(
                iteration=5,
                labels=np.arange(x.shape[0], dtype=np.int64),
                best=np.full(x.shape[0], 2.5, dtype=np.float32),
                partial=np.ones((3, 5), dtype=np.float64),
                state={"lo": 0, "hi": x.shape[0],
                       "sums_t": np.ones((4, 3), dtype=np.float64),
                       "counts": np.ones(3, dtype=np.float64)})
            write_slot(sess.slot_ref(0), result, generation=9)
            out = sess.read_slot(0, expected_generation=9)
            assert np.array_equal(out["labels"], result.labels)
            assert np.array_equal(out["best"], result.best)
            assert np.array_equal(out["partial"], result.partial)
            assert out["iteration"] == 5
            assert out["state"]["lo"] == 0
            assert np.array_equal(out["state"]["sums_t"],
                                  result.state["sums_t"])
            with pytest.raises(StaleGenerationError, match="worker 0"):
                sess.read_slot(0, expected_generation=10)
        finally:
            sess.close()

    def test_slot_copies_do_not_alias_the_segment(self):
        sess, x = self._session()
        try:
            plan = SimpleNamespace(shards=[SimpleNamespace(
                worker_id=0, lo=0, hi=x.shape[0])])
            sess.make_slots(plan, n_clusters=3, n_features=4,
                            dtype=np.float32, with_state=False)
            result = SimpleNamespace(
                iteration=0,
                labels=np.zeros(x.shape[0], dtype=np.int64),
                best=np.zeros(x.shape[0], dtype=np.float32),
                partial=np.zeros((3, 5), dtype=np.float64), state=None)
            write_slot(sess.slot_ref(0), result, generation=1)
            out = sess.read_slot(0, expected_generation=1)
            # a faster overlapped round may rewrite the slot while the
            # ABFT check still holds the previous partials
            result.partial += 7
            write_slot(sess.slot_ref(0), result, generation=2)
            assert np.all(out["partial"] == 0)
        finally:
            sess.close()

    def test_mid_fit_broadcast_shape_change_rejected(self):
        sess, x = self._session()
        try:
            sess.publish(x[:3], iteration=0)
            with pytest.raises(ValueError, match="shape changed"):
                sess.publish(x[:4], iteration=1)
        finally:
            sess.close()

    def test_attach_array_is_zero_copy(self):
        sess, x = self._session()
        try:
            view = attach_array(sess.data_ref)
            assert np.array_equal(view, x)
            assert view.base is not None   # a view over the segment
        finally:
            sess.close()


class TestCleanup:
    """kill-anywhere must leave no stranded ``/dev/shm`` segments."""

    def test_fit_leaves_no_segments(self, x):
        fit(x, n_workers=2, executor="process", transport="shm")
        # segment names embed the creator pid — the coordinator runs in
        # this process, so this audits exactly this test's segments
        assert shm_entries(f"{SEGMENT_PREFIX}-{os.getpid()}-") == []

    def test_session_close_is_idempotent(self):
        rng = np.random.default_rng(0)
        sess = ShmSession(rng.random((16, 3)).astype(np.float32))
        prefix = sess.data_ref.name.rsplit("-", 1)[0]
        assert shm_entries(prefix)
        sess.close()
        sess.close()
        assert shm_entries(prefix) == []

    def test_sigkill_mid_fit_unlinks_segments(self, tmp_path):
        """SIGKILL the coordinator mid-fit: the workers exit on pipe
        EOF and the resource tracker — which outlives them all —
        unlinks every segment the coordinator registered."""
        script = (
            "import numpy as np\n"
            "from repro.core.api import FTKMeans\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.random((120000, 32), dtype=np.float64)"
            ".astype('float32')\n"
            "FTKMeans(n_clusters=32, variant='tensorop', seed=0,\n"
            "         n_workers=2, executor='process', transport='shm',\n"
            "         max_iter=500, tol=0.0).fit(x)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(os.path.join(os.path.dirname(__file__),
                                              "..", "..", "src"))
                             + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.Popen([sys.executable, "-c", script], env=env,
                                start_new_session=True)
        prefix = f"{SEGMENT_PREFIX}-{proc.pid}-"
        try:
            # wait for boot to finish: data + broadcast + one slot per
            # worker.  Killing during the very first segment's creation
            # can race the child's resource-tracker *spawn* (a CPython
            # property, not our cleanup path); once all segments exist
            # their registrations have long drained and the kill may
            # land anywhere in the remaining rounds.
            deadline = time.monotonic() + 60.0
            while len(shm_entries(prefix)) < 4:
                assert proc.poll() is None, \
                    "fit finished before the shm segments appeared"
                assert time.monotonic() < deadline, \
                    "shm segments did not all appear within 60 s"
                time.sleep(0.005)
            time.sleep(0.2)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            deadline = time.monotonic() + 30.0
            while shm_entries(prefix):
                assert time.monotonic() < deadline, (
                    f"stranded segments after SIGKILL: "
                    f"{shm_entries(prefix)}")
                time.sleep(0.05)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)
        assert shm_entries(prefix) == []


class TestBootStats:
    def test_cold_spawns_recorded(self, x):
        km = fit(x, n_workers=3, executor="process", transport="shm")
        stats = km.dist_boot_stats_
        assert stats["cold_spawn"]["count"] == 3
        assert stats["cold_spawn"]["total_s"] > 0
        assert stats["cold_spawn"]["max_s"] >= stats["cold_spawn"]["mean_s"]

    def test_spare_promotion_recorded(self, x, ref):
        km = fit(x, n_workers=2, executor="process", transport="shm",
                 checkpoint_every=2, hot_spares=1,
                 worker_faults=WorkerFaultInjector.crash_at(0, 2))
        assert_same_fit(km, ref)
        stats = km.dist_boot_stats_
        assert stats["spare_promote"]["count"] >= 1
