"""Functional-kernel tests: tensor-core and SIMT GEMM against references."""

import numpy as np
import pytest

from repro.gemm.epilogue import (
    BroadcastArgminEpilogue,
    PartialArgminEpilogue,
    StoreEpilogue,
)
from repro.gemm.reference import (
    reference_assignment,
    reference_distance_matrix,
    reference_gemm,
)
from repro.gemm.shapes import GemmShape, distance_flops
from repro.gemm.simt_gemm import SimtGemm
from repro.gemm.tensorop_gemm import TensorOpGemm
from repro.gemm.tiling import TileConfig
from repro.gemm.verify import (
    assert_allclose_gemm,
    gemm_tolerance,
    labels_agree_fraction,
)
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4
from repro.gpusim.trace import Trace
from repro.utils.arrays import ceil_div


def _gmem(x, y, counters=None):
    from repro.core.assignment import setup_gmem

    return setup_gmem(x, y, counters if counters is not None else PerfCounters())


class TestShapes:
    def test_flops(self):
        assert GemmShape(10, 4, 8).flops == 2 * 10 * 4 * 8
        assert distance_flops(131072, 128, 128) == 2.0 * 131072 * 128 * 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)

    def test_check_operands(self, operands):
        x, y = operands
        shape = GemmShape.from_kmeans(x.shape[0], y.shape[0], x.shape[1])
        shape.check_operands(x, y)
        with pytest.raises(ValueError):
            shape.check_operands(x.T, y)


class TestTensorOpGemm:
    def test_matches_reference_assignment(self, operands, dtype, small_tile):
        x, y = operands
        gmem = _gmem(x, y)
        kern = TensorOpGemm(A100_PCIE_40GB, small_tile, dtype)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        ref, _ = reference_assignment(x, y, tf32=(dtype == np.float32))
        got = gmem["assign"][:, 1].astype(np.int64)
        assert labels_agree_fraction(got, ref) == 1.0

    def test_non_tile_aligned_shapes(self, rng, dtype, small_tile):
        """Predication: M, N, K not multiples of the tile extents."""
        x = rng.standard_normal((131, 37)).astype(dtype)
        y = rng.standard_normal((11, 37)).astype(dtype)
        gmem = _gmem(x, y)
        kern = TensorOpGemm(A100_PCIE_40GB, small_tile, dtype)
        kern.run(gmem, GemmShape(131, 11, 37))
        ref, _ = reference_assignment(x, y, tf32=(dtype == np.float32))
        got = gmem["assign"][:, 1].astype(np.int64)
        assert labels_agree_fraction(got, ref) == 1.0

    def test_async_traffic_on_ampere(self, operands, small_tile, dtype):
        x, y = operands
        c = PerfCounters()
        gmem = _gmem(x, y, c)
        kern = TensorOpGemm(A100_PCIE_40GB, small_tile, dtype, counters=c)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        assert c.async_copies > 0
        assert c.commit_groups > 0 and c.wait_groups > 0

    def test_t4_uses_synchronous_copies(self, operands, dtype):
        """No cp.async before SM80: pipeline runs in synchronous mode."""
        x, y = operands
        tile = TileConfig.make((64, 32, 16), (32, 32, 16), dtype, stages=2)
        c = PerfCounters()
        gmem = _gmem(x, y, c)
        kern = TensorOpGemm(TESLA_T4, tile, dtype, counters=c)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        assert c.commit_groups == 0  # pipeline disabled
        ref, _ = reference_assignment(x, y, tf32=(dtype == np.float32))
        assert labels_agree_fraction(gmem["assign"][:, 1].astype(int), ref) == 1.0

    def test_mma_instruction_count(self, operands):
        """The main loop issues exactly the tile-decomposition count."""
        x, y = operands
        m, k = x.shape
        n = y.shape[0]
        tile = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32)
        c = PerfCounters()
        kern = TensorOpGemm(A100_PCIE_40GB, tile, np.float32, counters=c)
        kern.run(_gmem(x, y, c), GemmShape(m, n, k))
        blocks = ceil_div(m, 64) * ceil_div(n, 32)
        k_iters = ceil_div(k, 16)
        warps = tile.warps_per_block
        per_warp_step = kern.mma_unit.shape.instructions_for(32, 32, 16)
        assert c.mma_ops == blocks * k_iters * warps * per_warp_step

    def test_fault_trace_emitted(self, operands, small_tile):
        from repro.gpusim.faults import FaultInjector

        x, y = operands
        trace = Trace()
        inj = FaultInjector(0, p_block=1.0, dtype=np.float32)
        kern = TensorOpGemm(A100_PCIE_40GB, small_tile, np.float32,
                            injector=inj, trace=trace)
        kern.run(_gmem(x, y), GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        assert trace.count("fault") == len(inj.injected) > 0


class TestSimtGemm:
    def test_store_epilogue_distances(self, operands, dtype, small_tile):
        x, y = operands
        m, n = x.shape[0], y.shape[0]
        gmem = _gmem(x, y)
        gmem.alloc("distances", (m, n), dtype)
        kern = SimtGemm(A100_PCIE_40GB, small_tile, dtype,
                        epilogue=StoreEpilogue())
        kern.run(gmem, GemmShape(m, n, x.shape[1]))
        dref = reference_distance_matrix(x, y)
        assert_allclose_gemm(gmem["distances"], dref, dtype, x.shape[1])

    def test_no_async_traffic(self, operands, small_tile, dtype):
        """The SIMT kernel stages through registers: plain loads only."""
        x, y = operands
        c = PerfCounters()
        gmem = _gmem(x, y, c)
        gmem.alloc("distances", (x.shape[0], y.shape[0]), dtype)
        kern = SimtGemm(A100_PCIE_40GB, small_tile, dtype, counters=c)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        assert c.async_copies == 0
        assert c.global_loads > 0

    def test_partial_argmin_epilogue(self, operands, dtype, small_tile):
        x, y = operands
        m, n, k = x.shape[0], y.shape[0], x.shape[1]
        grid_n = ceil_div(n, small_tile.tb.n)
        gmem = _gmem(x, y)
        gmem.alloc("partial_min", (m, grid_n), dtype)
        gmem.alloc("partial_arg", (m, grid_n), np.int64)
        kern = SimtGemm(A100_PCIE_40GB, small_tile, dtype,
                        epilogue=PartialArgminEpilogue())
        kern.run(gmem, GemmShape(m, n, k))
        col = np.argmin(gmem["partial_min"], axis=1)
        labels = gmem["partial_arg"][np.arange(m), col]
        ref, _ = reference_assignment(x, y)
        assert labels_agree_fraction(labels, ref) == 1.0

    def test_broadcast_epilogue(self, operands, dtype, small_tile):
        x, y = operands
        c = PerfCounters()
        gmem = _gmem(x, y, c)
        kern = SimtGemm(A100_PCIE_40GB, small_tile, dtype,
                        epilogue=BroadcastArgminEpilogue(), counters=c)
        kern.run(gmem, GemmShape(x.shape[0], y.shape[0], x.shape[1]))
        ref, _ = reference_assignment(x, y)
        got = gmem["assign"][:, 1].astype(np.int64)
        assert labels_agree_fraction(got, ref) == 1.0
        assert c.atomics > 0  # the per-row locks


class TestVerifyHelpers:
    def test_tolerance_ordering(self):
        assert gemm_tolerance(np.float32, 64, tf32=True) \
            > gemm_tolerance(np.float32, 64) \
            > gemm_tolerance(np.float64, 64)

    def test_assert_allclose_gemm_raises(self):
        a = np.ones((2, 2))
        b = np.ones((2, 2)) * 2
        with pytest.raises(AssertionError, match="GEMM mismatch"):
            assert_allclose_gemm(a, b, np.float64, 4)

    def test_labels_agree_shape_check(self):
        with pytest.raises(ValueError):
            labels_agree_fraction(np.zeros(3), np.zeros(4))


class TestReference:
    def test_distance_identity(self, rng):
        """The GEMM decomposition equals the direct pairwise distance."""
        x = rng.standard_normal((50, 12))
        y = rng.standard_normal((7, 12))
        d = reference_distance_matrix(x, y)
        direct = ((x[:, None, :] - y[None]) ** 2).sum(-1)
        np.testing.assert_allclose(d, direct, atol=1e-10)

    def test_tf32_changes_result(self, rng):
        x = rng.standard_normal((20, 16)).astype(np.float32)
        y = rng.standard_normal((5, 16)).astype(np.float32)
        exact = reference_gemm(x, y, tf32=False)
        rounded = reference_gemm(x, y, tf32=True)
        assert not np.array_equal(exact, rounded)
        # absolute error bounded by the TF32 ulp times the dot depth
        scale = float(np.abs(exact).max())
        assert float(np.abs(exact - rounded).max()) < 16 * 2.0 ** -11 * scale


class TestShortMainLoop:
    """Regression: k_iters < stages-1 must still complete the prologue
    copies (a 1-iteration loop once read stale zeros from shared memory)."""

    @pytest.mark.parametrize("k_features", [1, 3, 8, 16, 17])
    def test_tiny_feature_counts(self, rng, k_features):
        x = rng.standard_normal((96, k_features)).astype(np.float32)
        y = rng.standard_normal((8, k_features)).astype(np.float32)
        tile = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32,
                               stages=4)
        from repro.core.assignment import setup_gmem

        gmem = setup_gmem(x, y, PerfCounters())
        kern = TensorOpGemm(A100_PCIE_40GB, tile, np.float32)
        kern.run(gmem, GemmShape(96, 8, k_features))
        ref, _ = reference_assignment(x, y, tf32=True)
        got = gmem["assign"][:, 1].astype(np.int64)
        assert labels_agree_fraction(got, ref) == 1.0, k_features

    def test_ft_kernel_tiny_features(self, rng):
        from repro.core.ft_kmeans import FtTensorOpGemm
        from repro.core.assignment import setup_gmem
        from repro.gpusim.faults import FaultInjector

        x = rng.random((256, 3)).astype(np.float32)
        y = rng.random((8, 3)).astype(np.float32)
        tile = TileConfig.make((128, 64, 16), (64, 32, 16), np.float32)
        inj = FaultInjector(1, p_block=1.0, dtype=np.float32)
        gmem = setup_gmem(x, y, PerfCounters())
        kern = FtTensorOpGemm(A100_PCIE_40GB, tile, np.float32, injector=inj)
        kern.run(gmem, GemmShape(256, 8, 3))
        ref, _ = reference_assignment(x, y, tf32=True)
        got = gmem["assign"][:, 1].astype(np.int64)
        assert labels_agree_fraction(got, ref) == 1.0
