"""Tests for tile configurations and the paper's parameter rules."""

import numpy as np
import pytest

from repro.gemm.tiling import THREAD_TILE, Tile3, TileConfig, validate_rules
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4
from repro.gpusim.errors import ResourceLimitExceeded


class TestThreadTiles:
    def test_paper_rule_4(self):
        """Thread tiles are fixed: (16,8,4) FP32, (8,8,4) FP64."""
        assert tuple(THREAD_TILE[np.dtype(np.float32)]) == (16, 8, 4)
        assert tuple(THREAD_TILE[np.dtype(np.float64)]) == (8, 8, 4)


class TestValidateRules:
    def test_table1_parameters_are_valid(self):
        """Every parameter group in the paper's Table I passes the rules."""
        table1 = [
            ((256, 32, 16), (64, 32, 16), np.float32),   # param 88
            ((128, 64, 16), (32, 64, 16), np.float32),   # param 69
            ((64, 128, 16), (64, 32, 16), np.float32),   # param 83
            ((32, 256, 16), (32, 64, 16), np.float32),   # cuML fp32
            ((128, 32, 16), (32, 32, 16), np.float64),   # param 21
            ((64, 64, 16), (32, 32, 16), np.float64),    # param 19 / cuML
        ]
        for tb, warp, dt in table1:
            cfg = TileConfig.make(tb, warp, dt)
            assert cfg.warps_per_block >= 1

    def test_power_of_two_rule(self):
        v = validate_rules(Tile3(96, 32, 16), Tile3(32, 32, 16),
                           Tile3(16, 8, 4))
        assert any("power of two" in msg for msg in v)

    def test_warp_k_equals_tb_k(self):
        v = validate_rules(Tile3(64, 64, 16), Tile3(32, 32, 8),
                           Tile3(16, 8, 4))
        assert any("Warp.K" in msg for msg in v)

    def test_area_ratio_rule(self):
        # (64/16)*(64/8) = 32 not in {8, 16}
        v = validate_rules(Tile3(64, 64, 16), Tile3(64, 64, 16),
                           Tile3(16, 8, 4))
        assert any("ratio" in msg for msg in v)

    def test_divisibility(self):
        v = validate_rules(Tile3(64, 64, 16), Tile3(128, 32, 16),
                           Tile3(16, 8, 4))
        assert v  # tb not divisible by warp


class TestTileConfig:
    def test_invalid_raises(self):
        with pytest.raises(ValueError, match="invalid tile"):
            TileConfig.make((96, 64, 16), (32, 32, 16), np.float32)

    def test_stage_minimum(self):
        with pytest.raises(ValueError, match="stages"):
            TileConfig.make((64, 64, 16), (32, 32, 16), np.float32, stages=1)

    def test_derived_quantities(self):
        cfg = TileConfig.make((128, 64, 16), (64, 32, 16), np.float32)
        assert cfg.warps_per_block == 4
        assert cfg.threads_per_block == 128
        assert cfg.mma_tiles_per_warp == 16   # (64/16)*(32/8)
        assert cfg.m_w == 4 and cfg.n_w == 4

    def test_smem_bytes(self):
        cfg = TileConfig.make((32, 256, 16), (32, 64, 16), np.float32, stages=4)
        assert cfg.smem_bytes(np.float32) == 4 * (32 + 256) * 16 * 4

    def test_regs_scale_with_warp_tile(self):
        small = TileConfig.make((64, 32, 16), (32, 32, 16), np.float32)
        big = TileConfig.make((128, 64, 16), (64, 32, 16), np.float32)
        assert big.regs_per_thread(np.float32) >= small.regs_per_thread(np.float32)

    def test_fp64_regs_double(self):
        cfg32 = TileConfig.make((64, 64, 16), (32, 64, 16), np.float32)
        cfg64 = TileConfig.make((64, 64, 16), (32, 32, 16), np.float64)
        # 64-bit accumulators need two registers per element
        assert cfg64.regs_per_thread(np.float64) > cfg32.regs_per_thread(np.float32) / 2


class TestFeasibility:
    def test_feasible_on_a100(self):
        cfg = TileConfig.make((32, 256, 16), (32, 64, 16), np.float32, stages=4)
        assert cfg.feasible_on(A100_PCIE_40GB, np.float32)

    def test_cuml_fp32_4stage_infeasible_on_t4(self):
        """cuML's Ampere pipeline does not fit T4's 64 KB shared memory."""
        cfg = TileConfig.make((32, 256, 16), (32, 64, 16), np.float32, stages=4)
        assert not cfg.feasible_on(TESLA_T4, np.float32)
        cfg2 = TileConfig.make((32, 256, 16), (32, 64, 16), np.float32, stages=2)
        assert cfg2.feasible_on(TESLA_T4, np.float32)

    def test_assert_feasible_raises(self):
        cfg = TileConfig.make((256, 256, 32), (64, 32, 32), np.float32,
                              stages=4)
        with pytest.raises(ResourceLimitExceeded):
            cfg.assert_feasible(A100_PCIE_40GB, np.float32)

    def test_label_format(self):
        cfg = TileConfig.make((64, 128, 16), (64, 32, 16), np.float32)
        assert cfg.label() == "TB(64,128,16) W(64,32,16) T(16,8,4)"
