"""Tests for device specifications."""

import numpy as np
import pytest

from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4, DeviceSpec, get_device


class TestPresets:
    def test_a100_paper_peaks(self):
        # the paper quotes the CUDA-core peaks
        assert A100_PCIE_40GB.simt_tflops_fp32 == 19.5
        assert A100_PCIE_40GB.simt_tflops_fp64 == 9.7
        assert A100_PCIE_40GB.mem_bw_gbps == 1555.0

    def test_t4_paper_peaks(self):
        assert TESLA_T4.simt_tflops_fp32 == 8.1
        assert TESLA_T4.simt_tflops_fp64 == 0.253
        assert TESLA_T4.mem_bw_gbps == 320.0

    def test_async_copy_is_ampere_only(self):
        assert A100_PCIE_40GB.has_async_copy
        assert not TESLA_T4.has_async_copy

    def test_t4_has_no_fp64_tensor_path(self):
        assert A100_PCIE_40GB.has_fp64_tensor()
        assert not TESLA_T4.has_fp64_tensor()

    def test_tensor_peak_exceeds_simt_peak_fp32(self):
        for dev in (A100_PCIE_40GB, TESLA_T4):
            assert dev.tensor_tflops_fp32 > dev.simt_tflops_fp32


class TestPeakFlops:
    def test_tensor_vs_simt(self):
        assert A100_PCIE_40GB.peak_flops(np.float32, tensor_core=True) == 156.0e12
        assert A100_PCIE_40GB.peak_flops(np.float32, tensor_core=False) == 19.5e12

    def test_fp64(self):
        assert A100_PCIE_40GB.peak_flops(np.float64) == 19.5e12

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError):
            A100_PCIE_40GB.peak_flops(np.int32)

    def test_mem_bw_units(self):
        assert A100_PCIE_40GB.mem_bw() == 1555.0e9


class TestGetDevice:
    def test_short_names(self):
        assert get_device("a100") is A100_PCIE_40GB
        assert get_device("t4") is TESLA_T4
        assert get_device("A100") is A100_PCIE_40GB

    def test_full_name(self):
        assert get_device(A100_PCIE_40GB.name) is A100_PCIE_40GB

    def test_passthrough(self):
        assert get_device(TESLA_T4) is TESLA_T4

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_device("h100")


class TestWith:
    def test_with_returns_modified_copy(self):
        mod = A100_PCIE_40GB.with_(mem_bw_gbps=2000.0)
        assert mod.mem_bw_gbps == 2000.0
        assert A100_PCIE_40GB.mem_bw_gbps == 1555.0
        assert mod.num_sms == A100_PCIE_40GB.num_sms
