"""Tests for the SEU fault injector."""

import numpy as np
import pytest

from repro.gpusim.faults import FaultInjector, FaultPlan, NullInjector


class TestFaultPlan:
    def test_locate_within_tile(self):
        plan = FaultPlan(step=0, row_frac=0.99, col_frac=0.0, bit=3)
        r, c = plan.locate(64, 32)
        assert r == 63 and c == 0

    def test_locate_never_out_of_range(self):
        plan = FaultPlan(step=0, row_frac=0.999999, col_frac=0.999999, bit=0)
        r, c = plan.locate(7, 5)
        assert 0 <= r < 7 and 0 <= c < 5


class TestFaultInjector:
    def test_p_zero_never_fires(self):
        inj = FaultInjector(0, p_block=0.0, dtype=np.float32)
        assert not inj.enabled
        assert inj.plan_for_block(0, 10) is None

    def test_p_one_always_fires(self):
        inj = FaultInjector(0, p_block=1.0, dtype=np.float32)
        plans = [inj.plan_for_block(i, 8) for i in range(20)]
        assert all(p is not None for p in plans)
        assert all(0 <= p.step < 8 for p in plans)
        assert all(0 <= p.bit < 32 for p in plans)

    def test_fp64_bit_range(self):
        inj = FaultInjector(0, p_block=1.0, dtype=np.float64)
        bits = [inj.plan_for_block(i, 4).bit for i in range(200)]
        assert max(bits) >= 32  # high word gets hit too
        assert all(0 <= b < 64 for b in bits)

    def test_probability_roughly_respected(self):
        inj = FaultInjector(42, p_block=0.25, dtype=np.float32)
        fired = sum(inj.plan_for_block(i, 8) is not None for i in range(4000))
        assert 800 < fired < 1200

    def test_max_faults_cap(self):
        inj = FaultInjector(0, p_block=1.0, dtype=np.float32, max_faults=3)
        plans = [inj.plan_for_block(i, 8) for i in range(10)]
        assert sum(p is not None for p in plans) == 3

    def test_reproducible_given_seed(self):
        a = FaultInjector(7, p_block=0.5, dtype=np.float32)
        b = FaultInjector(7, p_block=0.5, dtype=np.float32)
        pa = [a.plan_for_block(i, 8) for i in range(50)]
        pb = [b.plan_for_block(i, 8) for i in range(50)]
        assert pa == pb

    def test_apply_flips_element(self):
        inj = FaultInjector(0, p_block=1.0, dtype=np.float32)
        plan = inj.plan_for_block(0, 8)
        acc = np.ones((16, 16), np.float32)
        r, c = inj.apply(plan, acc)
        assert acc[r, c] != 1.0
        assert np.sum(acc != 1.0) == 1
        assert inj.counters.errors_injected == 1

    def test_zero_steps(self):
        inj = FaultInjector(0, p_block=1.0, dtype=np.float32)
        assert inj.plan_for_block(0, 0) is None

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultInjector(0, p_block=1.5, dtype=np.float32)

    def test_injection_log(self):
        inj = FaultInjector(0, p_block=1.0, dtype=np.float32)
        inj.plan_for_block(3, 8)
        inj.plan_for_block(9, 8)
        assert [bid for bid, _ in inj.injected] == [3, 9]


class TestNullInjector:
    def test_never_fires(self):
        n = NullInjector()
        assert not n.enabled
        assert n.plan_for_block(0, 100) is None

    def test_apply_raises(self):
        with pytest.raises(RuntimeError):
            NullInjector().apply(None, np.zeros((2, 2)))
