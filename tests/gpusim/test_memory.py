"""Tests for simulated memory spaces and traffic accounting."""

import numpy as np
import pytest

from repro.gpusim.counters import PerfCounters
from repro.gpusim.errors import MemoryFault, ResourceLimitExceeded
from repro.gpusim.memory import GlobalMemory, RegisterFile, SharedMemory


class TestGlobalMemory:
    def test_alloc_and_load(self):
        g = GlobalMemory()
        g.alloc("a", (8, 8), np.float32)
        tile = g.load("a", slice(0, 4), slice(0, 4))
        assert tile.shape == (4, 4)
        assert g.counters.global_loads == 4 * 4 * 4

    def test_load_returns_copy(self):
        g = GlobalMemory()
        arr = g.alloc("a", (4, 4), np.float32)
        tile = g.load("a", slice(0, 2), slice(0, 2))
        tile[:] = 99
        assert arr[0, 0] == 0

    def test_store_counts_bytes(self):
        g = GlobalMemory()
        g.alloc("a", (8, 8), np.float64)
        g.store("a", slice(0, 2), slice(0, 2), np.ones((2, 2)))
        assert g.counters.global_stores == 2 * 2 * 8

    def test_async_copy_counted_separately(self):
        g = GlobalMemory()
        g.alloc("a", (8, 8), np.float32)
        g.async_copy("a", slice(0, 8), slice(0, 8))
        assert g.counters.async_copies == 8 * 8 * 4
        assert g.counters.global_loads == 0

    def test_bind_existing(self):
        g = GlobalMemory()
        arr = np.arange(6.0).reshape(2, 3)
        g.bind("x", arr)
        assert g["x"] is arr
        assert "x" in g

    def test_missing_name(self):
        g = GlobalMemory()
        with pytest.raises(MemoryFault):
            g["nope"]

    def test_atomic_add(self):
        g = GlobalMemory()
        g.alloc("acc", (4,), np.float64)
        g.atomic_add("acc", 1, 2.5)
        g.atomic_add("acc", 1, 2.5)
        assert g["acc"][1] == 5.0
        assert g.counters.atomics == 2

    def test_atomic_min_packed(self):
        g = GlobalMemory()
        arr = g.alloc("assign", (3, 2), np.float64)
        arr[:, 0] = np.inf
        assert g.atomic_min_packed("assign", 0, 5.0, 7)
        assert not g.atomic_min_packed("assign", 0, 9.0, 8)  # loses
        assert g.atomic_min_packed("assign", 0, 1.0, 9)      # wins
        assert arr[0, 0] == 1.0 and arr[0, 1] == 9
        assert g.counters.atomics == 3


class TestSharedMemory:
    def test_capacity_enforced(self):
        s = SharedMemory(1024)
        s.alloc("a", (16, 8), np.float64)  # exactly 1024 B
        with pytest.raises(ResourceLimitExceeded):
            s.alloc("b", (1,), np.float32)

    def test_used_bytes(self):
        s = SharedMemory(4096)
        s.alloc("a", (16, 16), np.float32)
        assert s.used_bytes == 1024

    def test_read_write_counted(self):
        s = SharedMemory(4096, counters=PerfCounters())
        s.alloc("a", (4, 4), np.float32)
        s.write("a", slice(None), np.ones((4, 4), np.float32))
        tile = s.read("a", slice(None))
        assert tile.sum() == 16
        assert s.counters.shared_stores == 64
        assert s.counters.shared_loads == 64

    def test_read_returns_copy(self):
        s = SharedMemory(4096)
        s.alloc("a", (2, 2), np.float32)
        t = s.read("a", slice(None))
        t[:] = 5
        assert s["a"].sum() == 0


class TestRegisterFile:
    def test_declare_within_limit(self):
        r = RegisterFile(255)
        r.declare(100)
        r.declare(100)
        assert r.declared == 200

    def test_over_limit(self):
        r = RegisterFile(255)
        with pytest.raises(ResourceLimitExceeded):
            r.declare(300)

    def test_negative(self):
        r = RegisterFile(255)
        with pytest.raises(ValueError):
            r.declare(-1)

    def test_reset(self):
        r = RegisterFile(255)
        r.declare(50)
        r.reset()
        assert r.declared == 0
