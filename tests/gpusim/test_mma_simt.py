"""Tests for the tensor-core MMA and SIMT functional units."""

import numpy as np
import pytest

from repro.gpusim.counters import PerfCounters
from repro.gpusim.mma import (
    MMA_FP32_TF32,
    MMA_FP64,
    MmaUnit,
    mma_shape_for,
    round_tf32,
)
from repro.gpusim.simt import SimtUnit


class TestMmaShapes:
    def test_paper_instruction_shapes(self):
        assert (MMA_FP64.m, MMA_FP64.n, MMA_FP64.k) == (8, 8, 4)
        assert (MMA_FP32_TF32.m, MMA_FP32_TF32.n, MMA_FP32_TF32.k) == (16, 8, 8)

    def test_shape_for_dtype(self):
        assert mma_shape_for(np.float32) is MMA_FP32_TF32
        assert mma_shape_for(np.float64) is MMA_FP64
        with pytest.raises(ValueError):
            mma_shape_for(np.int32)

    def test_instruction_count(self):
        # a 64x32 warp tile over a 16-deep fragment on TF32 m16n8k8
        assert MMA_FP32_TF32.instructions_for(64, 32, 16) == 4 * 4 * 2
        # fp64 m8n8k4: 32x32x16 warp tile
        assert MMA_FP64.instructions_for(32, 32, 16) == 4 * 4 * 4


class TestRoundTf32:
    def test_idempotent(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        once = round_tf32(x)
        np.testing.assert_array_equal(round_tf32(once), once)

    def test_relative_error_bound(self, rng):
        x = rng.standard_normal(1000).astype(np.float32) * 100
        err = np.abs(round_tf32(x) - x) / np.abs(x)
        assert err.max() <= 2.0 ** -11  # RNE half-ulp of 10-bit mantissa

    def test_round_to_nearest_not_truncation(self):
        """Truncation would bias toward zero; RNE must round some values up."""
        x = np.float32(1.0) + np.float32(2.0 ** -11) + np.float32(2.0 ** -13)
        assert float(round_tf32(x)) >= float(x)

    def test_unbiased_on_random_data(self, rng):
        x = (rng.standard_normal(200_000) * 10).astype(np.float32)
        bias = float(np.mean(round_tf32(x).astype(np.float64) - x))
        assert abs(bias) < 1e-4  # truncation would give ~-2e-3 * mean|x|

    def test_non_finite_passthrough(self):
        x = np.array([np.inf, -np.inf, np.nan, 1.0], dtype=np.float32)
        out = round_tf32(x)
        assert np.isposinf(out[0]) and np.isneginf(out[1]) and np.isnan(out[2])

    def test_exact_values_unchanged(self):
        # values representable in 10 mantissa bits
        x = np.array([1.0, 0.5, 1024.0, 1.5], dtype=np.float32)
        np.testing.assert_array_equal(round_tf32(x), x)


class TestMmaUnit:
    def test_accumulates_correctly_fp64(self, rng):
        unit = MmaUnit(np.float64)
        a = rng.standard_normal((8, 16))
        b = rng.standard_normal((16, 8))
        acc = np.zeros((8, 8))
        unit.mma(a, b, acc)
        np.testing.assert_allclose(acc, a @ b, rtol=1e-12)

    def test_tf32_rounding_applied(self, rng):
        c = PerfCounters()
        unit = MmaUnit(np.float32, c, use_tf32=True)
        a = rng.standard_normal((16, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        acc = np.zeros((16, 8), np.float32)
        unit.mma(a, b, acc)
        expected = round_tf32(a) @ round_tf32(b)
        np.testing.assert_array_equal(acc, expected)

    def test_tf32_disabled(self, rng):
        unit = MmaUnit(np.float32, use_tf32=False)
        a = rng.standard_normal((16, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        acc = np.zeros((16, 8), np.float32)
        unit.mma(a, b, acc)
        np.testing.assert_array_equal(acc, a @ b)

    def test_instruction_and_flop_accounting(self, rng):
        c = PerfCounters()
        unit = MmaUnit(np.float64, c)
        a = rng.standard_normal((32, 16))
        b = rng.standard_normal((16, 32))
        acc = np.zeros((32, 32))
        unit.mma(a, b, acc)
        assert c.mma_ops == MMA_FP64.instructions_for(32, 32, 16)
        assert c.flops == 2 * 32 * 32 * 16
        assert c.abft_mma_ops == 0

    def test_abft_flag_counts_separately(self, rng):
        c = PerfCounters()
        unit = MmaUnit(np.float64, c)
        a = np.ones((8, 4))
        b = np.ones((4, 8))
        unit.mma(a, b, np.zeros((8, 8)), abft=True)
        assert c.abft_mma_ops == c.mma_ops > 0

    def test_shape_mismatch(self):
        unit = MmaUnit(np.float32)
        with pytest.raises(ValueError):
            unit.mma(np.ones((4, 4)), np.ones((5, 4)), np.zeros((4, 4)))


class TestSimtUnit:
    def test_fma_gemm(self, rng):
        unit = SimtUnit(np.float64)
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((12, 6))
        acc = np.zeros((8, 6))
        unit.fma_gemm(a, b, acc)
        np.testing.assert_allclose(acc, a @ b, rtol=1e-12)
        assert unit.counters.simt_fma == 8 * 6 * 12

    def test_weighted_sums(self, rng):
        c = PerfCounters()
        unit = SimtUnit(np.float64, c)
        tile = rng.standard_normal((6, 10))
        w = np.arange(1.0, 7.0)
        out = unit.weighted_rowsum(tile, w, abft=True)
        np.testing.assert_allclose(out, w @ tile, rtol=1e-12)
        assert c.abft_simt_ops == 60
        out2 = unit.weighted_colsum(tile, np.ones(10))
        np.testing.assert_allclose(out2, tile.sum(axis=1), rtol=1e-12)

    def test_square_rowsum(self, rng):
        unit = SimtUnit(np.float64)
        tile = rng.standard_normal((5, 7))
        np.testing.assert_allclose(unit.square_rowsum(tile),
                                   (tile ** 2).sum(axis=1), rtol=1e-12)

    def test_row_argmin(self):
        unit = SimtUnit(np.float32)
        tile = np.array([[3.0, 1.0, 2.0], [0.5, 4.0, 0.4]], np.float32)
        mins, args = unit.row_argmin(tile)
        np.testing.assert_array_equal(args, [1, 2])
        np.testing.assert_allclose(mins, np.array([1.0, 0.4], np.float32))

    def test_axpy(self):
        unit = SimtUnit(np.float32)
        out = unit.axpy(2.0, np.ones(4, np.float32), np.ones(4, np.float32))
        np.testing.assert_array_equal(out, np.full(4, 3.0, np.float32))
