"""Tests for occupancy calculation and the grid/block/warp hierarchy."""

import numpy as np
import pytest

from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4
from repro.gpusim.errors import LaunchError, ResourceLimitExceeded
from repro.gpusim.hierarchy import Grid, LaunchConfig
from repro.gpusim.occupancy import compute_occupancy


class TestOccupancy:
    def test_thread_limited(self):
        occ = compute_occupancy(A100_PCIE_40GB, 1024, 0, 32)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "threads"
        assert occ.occupancy == 1.0

    def test_smem_limited(self):
        # cuML FP32: 4 stages x (32+256) x 16 x 4B = 73728 B
        occ = compute_occupancy(A100_PCIE_40GB, 128, 73728, 64)
        assert occ.limiter == "smem"
        assert occ.blocks_per_sm == A100_PCIE_40GB.smem_per_sm // 73728

    def test_register_limited(self):
        occ = compute_occupancy(A100_PCIE_40GB, 1024, 0, 255)
        assert occ.limiter == "regs"

    def test_infeasible(self):
        occ = compute_occupancy(TESLA_T4, 128, TESLA_T4.smem_per_sm + 1, 32)
        assert not occ.feasible

    def test_monotone_in_smem(self):
        prev = None
        for smem in (8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024):
            occ = compute_occupancy(A100_PCIE_40GB, 128, smem, 32)
            if prev is not None:
                assert occ.blocks_per_sm <= prev
            prev = occ.blocks_per_sm

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            compute_occupancy(A100_PCIE_40GB, 0, 0, 32)


class TestLaunchConfig:
    def test_valid(self):
        cfg = LaunchConfig(4, 2, 256, 1024, 64)
        cfg.validate(A100_PCIE_40GB)
        assert cfg.num_blocks == 8
        assert cfg.warps_per_block == 8

    def test_bad_grid(self):
        with pytest.raises(LaunchError):
            LaunchConfig(0, 1, 128).validate(A100_PCIE_40GB)

    def test_non_warp_multiple(self):
        with pytest.raises(LaunchError):
            LaunchConfig(1, 1, 100).validate(A100_PCIE_40GB)

    def test_too_many_threads(self):
        with pytest.raises(ResourceLimitExceeded):
            LaunchConfig(1, 1, 2048).validate(A100_PCIE_40GB)

    def test_smem_over_block_limit(self):
        with pytest.raises(ResourceLimitExceeded):
            LaunchConfig(1, 1, 128, smem_bytes=TESLA_T4.smem_per_block + 1
                         ).validate(TESLA_T4)


class TestGrid:
    def test_block_iteration_order(self):
        grid = Grid(A100_PCIE_40GB, LaunchConfig(2, 3, 64))
        ids = [b.block_id for b in grid.blocks()]
        assert ids == list(range(6))
        coords = [(b.block_m, b.block_n) for b in grid.blocks()]
        assert coords[0] == (0, 0) and coords[-1] == (1, 2)

    def test_for_tiles(self):
        grid = Grid.for_tiles(A100_PCIE_40GB, 100, 50, 32, 32, 128)
        assert grid.config.grid_m == 4
        assert grid.config.grid_n == 2

    def test_launch_counted(self):
        c = PerfCounters()
        Grid(A100_PCIE_40GB, LaunchConfig(1, 1, 64), counters=c)
        assert c.kernels_launched == 1

    def test_warp_raster(self):
        grid = Grid(A100_PCIE_40GB, LaunchConfig(1, 1, 128))
        block = next(grid.blocks())
        warps = block.warps(2, 2)
        assert len(warps) == 4
        assert [(w.warp_m, w.warp_n) for w in warps] == [
            (0, 0), (0, 1), (1, 0), (1, 1)]

    def test_warp_raster_mismatch(self):
        grid = Grid(A100_PCIE_40GB, LaunchConfig(1, 1, 128))
        block = next(grid.blocks())
        with pytest.raises(LaunchError):
            block.warps(3, 2)

    def test_syncthreads_counted(self):
        grid = Grid(A100_PCIE_40GB, LaunchConfig(1, 1, 64))
        block = next(grid.blocks())
        block.syncthreads()
        block.syncthreads()
        assert grid.counters.barriers == 2
