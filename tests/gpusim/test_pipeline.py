"""Tests for the cp.async pipeline model — including the stale-data
failure mode that proves copies really are deferred."""

import numpy as np
import pytest

from repro.gpusim.counters import PerfCounters
from repro.gpusim.errors import PipelineError
from repro.gpusim.pipeline import AsyncCopyPipeline


def _bufs(n=3, shape=(4,)):
    return [np.zeros(shape, np.float32) for _ in range(n)]


class TestCommitWaitSemantics:
    def test_copy_not_visible_before_wait(self):
        pipe = AsyncCopyPipeline()
        dest = np.zeros(4, np.float32)
        pipe.async_copy(dest, np.ones(4, np.float32))
        pipe.commit_group()
        # still in flight: dest must be stale
        assert dest.sum() == 0
        pipe.wait_group(0)
        assert dest.sum() == 4

    def test_wait_completes_oldest_first(self):
        pipe = AsyncCopyPipeline()
        d = _bufs(3)
        for i in range(3):
            pipe.async_copy(d[i], np.full(4, i + 1, np.float32))
            pipe.commit_group()
        pipe.wait_group(2)  # completes exactly the oldest group
        assert d[0].sum() == 4 and d[1].sum() == 0 and d[2].sum() == 0
        pipe.wait_group(0)
        assert d[1].sum() == 8 and d[2].sum() == 12

    def test_groups_in_flight(self):
        pipe = AsyncCopyPipeline()
        d = _bufs(2)
        for i in range(2):
            pipe.async_copy(d[i], np.ones(4, np.float32))
            pipe.commit_group()
        assert pipe.groups_in_flight == 2
        pipe.wait_group(1)
        assert pipe.groups_in_flight == 1

    def test_multi_copy_group(self):
        pipe = AsyncCopyPipeline()
        a, b = _bufs(2)
        pipe.async_copy(a, np.ones(4, np.float32))
        pipe.async_copy(b, np.full(4, 2, np.float32))
        pipe.commit_group()
        pipe.wait_group(0)
        assert a.sum() == 4 and b.sum() == 8

    def test_source_snapshot_at_issue(self):
        """cp.async reads the source when issued, not when completed."""
        pipe = AsyncCopyPipeline()
        src = np.ones(4, np.float32)
        dest = np.zeros(4, np.float32)
        pipe.async_copy(dest, src)
        src[:] = 99  # mutate after issue
        pipe.commit_group()
        pipe.wait_group(0)
        assert dest.sum() == 4


class TestErrors:
    def test_shape_mismatch(self):
        pipe = AsyncCopyPipeline()
        with pytest.raises(PipelineError):
            pipe.async_copy(np.zeros(4, np.float32), np.zeros(5, np.float32))

    def test_negative_wait(self):
        pipe = AsyncCopyPipeline()
        with pytest.raises(PipelineError):
            pipe.wait_group(-1)

    def test_drain_with_uncommitted(self):
        pipe = AsyncCopyPipeline()
        pipe.async_copy(np.zeros(2, np.float32), np.ones(2, np.float32))
        with pytest.raises(PipelineError):
            pipe.drain()


class TestDisabledPipeline:
    def test_synchronous_when_disabled(self):
        """Pre-Ampere: copies complete immediately (register path)."""
        pipe = AsyncCopyPipeline(enabled=False)
        dest = np.zeros(4, np.float32)
        pipe.async_copy(dest, np.ones(4, np.float32))
        assert dest.sum() == 4  # no commit/wait needed

    def test_no_group_accounting_when_disabled(self):
        c = PerfCounters()
        pipe = AsyncCopyPipeline(c, enabled=False)
        pipe.commit_group()
        pipe.wait_group(0)
        assert c.commit_groups == 0 and c.wait_groups == 0


class TestCounters:
    def test_commit_and_wait_counted(self):
        c = PerfCounters()
        pipe = AsyncCopyPipeline(c)
        pipe.async_copy(np.zeros(2, np.float32), np.ones(2, np.float32))
        pipe.commit_group()
        pipe.wait_group(0)
        assert c.commit_groups == 1
        assert c.wait_groups == 1
