"""Tests for the analytic timing model — the qualitative orderings the
paper's evaluation rests on."""

import numpy as np
import pytest

from repro.codegen.cuml_params import cuml_tile
from repro.gpusim.clock import SimClock
from repro.gpusim.device import A100_PCIE_40GB, TESLA_T4
from repro.gpusim.timing import Calibration, TimingModel

M = 131072


@pytest.fixture(scope="module")
def model():
    return TimingModel(A100_PCIE_40GB)


def _ft_tile_args(dtype):
    """A good mid-size tile (what the selector typically picks)."""
    if np.dtype(dtype) == np.float32:
        return dict(tb_m=128, tb_n=128, tb_k=16, w_m=64, w_n=32, stages=3)
    return dict(tb_m=64, tb_n=64, tb_k=16, w_m=32, w_n=32, stages=3)


def _cuml_args(dtype):
    t = cuml_tile(dtype)
    return dict(tb_m=t.tb.m, tb_n=t.tb.n, tb_k=t.tb.k, w_m=t.warp.m,
                w_n=t.warp.n, stages=t.stages)


class TestBasicSanity:
    def test_positive_time_and_breakdown(self, model, dtype):
        t = model.distance_tensorop(M, 64, 64, dtype, **_ft_tile_args(dtype))
        assert t.time_s > 0
        assert t.t_compute > 0 and t.t_memory > 0
        assert t.gflops > 0

    def test_gflops_uses_useful_flops(self, model):
        t = model.distance_tensorop(M, 64, 64, np.float32,
                                    **_ft_tile_args(np.float32))
        assert t.useful_flops == 2.0 * M * 64 * 64

    def test_infeasible_tile_raises(self, model):
        with pytest.raises(ValueError):
            # stages x tiles exceed even A100's shared memory
            model.distance_tensorop(M, 64, 64, np.float64, tb_m=256, tb_n=256,
                                    tb_k=32, w_m=64, w_n=64, stages=8)


class TestPaperOrderings:
    def test_stepwise_ladder_fp32(self, model):
        """Fig. 7: naive < v1 < v2 < v3 < tensor-core."""
        naive = model.distance_naive(M, 128, 128, np.float32).gflops
        prev = naive
        for variant in ("v1", "v2", "v3"):
            g = model.distance_simt(M, 128, 128, np.float32, 64, 64, 16,
                                    32, 32, variant=variant).gflops
            assert g > prev, variant
            prev = g
        ft = model.distance_tensorop(M, 128, 128, np.float32,
                                     **_ft_tile_args(np.float32)).gflops
        assert ft > prev

    def test_cuml_padding_waste_small_clusters(self, model):
        """cuML's TB_N=256 against K=8 clusters wastes ~31/32 of the MMAs."""
        cu8 = model.distance_tensorop(M, 8, 128, np.float32,
                                      **_cuml_args(np.float32))
        cu128 = model.distance_tensorop(M, 128, 128, np.float32,
                                        **_cuml_args(np.float32))
        # useful GFLOPS collapse as padding grows
        assert cu8.gflops < cu128.gflops / 4

    def test_tuned_beats_cuml_fp32(self, model):
        ft = model.distance_tensorop(M, 128, 128, np.float32,
                                     **_ft_tile_args(np.float32))
        cu = model.distance_tensorop(M, 128, 128, np.float32,
                                     **_cuml_args(np.float32))
        assert 1.5 < ft.gflops / cu.gflops < 3.5  # paper: 1.83x

    def test_fp64_headroom_is_small(self, model):
        """Paper Fig. 9/12: FP64 tuned ≈ cuML (avg 1.04x)."""
        ft = model.distance_tensorop(M, 128, 128, np.float64,
                                     **_ft_tile_args(np.float64))
        cu = model.distance_tensorop(M, 128, 128, np.float64,
                                     **_cuml_args(np.float64))
        assert ft.gflops / cu.gflops < 1.4

    def test_absolute_scale_fp32(self, model):
        """FT K-means ~17.7 TFLOPS, cuML ~9.7 at (K=128, N=128)."""
        ft = model.distance_tensorop(M, 128, 128, np.float32,
                                     **_ft_tile_args(np.float32))
        cu = model.distance_tensorop(M, 128, 128, np.float32,
                                     **_cuml_args(np.float32))
        assert 14000 < ft.gflops < 23000
        assert 7000 < cu.gflops < 12000


class TestAbftOverheads:
    def test_fp32_overhead_small(self, model):
        """Paper Fig. 15: ~1-2% on FP32 (absorbed into idle TF32 slots)."""
        args = _ft_tile_args(np.float32)
        base = model.distance_tensorop(M, 128, 128, np.float32, **args)
        ft = model.distance_tensorop(M, 128, 128, np.float32, abft="ftkmeans",
                                     **args)
        overhead = ft.time_s / base.time_s - 1
        assert 0 <= overhead < 0.06

    def test_fp64_overhead_substantial(self, model):
        """Paper Fig. 16: ~20% at K=128 (DMMA pipe near roofline)."""
        args = _ft_tile_args(np.float64)
        base = model.distance_tensorop(M, 128, 128, np.float64, **args)
        ft = model.distance_tensorop(M, 128, 128, np.float64, abft="ftkmeans",
                                     **args)
        overhead = ft.time_s / base.time_s - 1
        assert 0.10 < overhead < 0.30

    def test_tensor_only_worse_than_fused(self, model, dtype):
        """Sec. IV-B ablation: all-tensor checksums cost ~50%."""
        args = _ft_tile_args(dtype)
        fused = model.distance_tensorop(M, 128, 128, dtype, abft="ftkmeans",
                                        **args)
        tonly = model.distance_tensorop(M, 128, 128, dtype, abft="tensor_only",
                                        **args)
        assert tonly.time_s > fused.time_s

    def test_wu_pays_for_sync_path(self, model, dtype):
        """Paper Fig. 17: Wu's scheme ~30% over the async baseline."""
        args = _ft_tile_args(dtype)
        base = model.distance_tensorop(M, 128, 128, dtype, **args)
        wu = model.distance_tensorop(M, 128, 128, dtype, abft="wu", **args)
        assert 1.15 < wu.time_s / base.time_s < 2.2

    def test_correction_cost_scales_with_injection(self, model):
        args = _ft_tile_args(np.float32)
        t0 = model.distance_tensorop(M, 128, 128, np.float32, abft="ftkmeans",
                                     p_block_inject=0.0, **args)
        t1 = model.distance_tensorop(M, 128, 128, np.float32, abft="ftkmeans",
                                     p_block_inject=1.0, **args)
        assert t1.t_correction > 0
        assert t1.time_s > t0.time_s
        # paper: ~2.36% on FP32
        assert (t1.time_s / t0.time_s - 1) < 0.08

    def test_kosaian_recompute_costlier_than_online(self, model):
        args = _ft_tile_args(np.float32)
        ft = model.distance_tensorop(M, 128, 128, np.float32, abft="ftkmeans",
                                     p_block_inject=0.5, **args)
        ko = model.distance_tensorop(M, 128, 128, np.float32, abft="kosaian",
                                     p_block_inject=0.5, **args)
        assert ko.t_correction > ft.t_correction


class TestDeviceEffects:
    def test_t4_slower_than_a100(self):
        args = _ft_tile_args(np.float32)
        args["stages"] = 2  # T4's 64 KB shared memory
        a = TimingModel(A100_PCIE_40GB).distance_tensorop(
            M, 128, 128, np.float32, **args)
        t = TimingModel(TESLA_T4).distance_tensorop(
            M, 128, 128, np.float32, **args)
        assert t.time_s > a.time_s

    def test_t4_fp64_is_catastrophic(self):
        """No FP64 tensor path on Turing: 0.253 TFLOPS peak."""
        t = TimingModel(TESLA_T4).distance_tensorop(
            M, 64, 64, np.float64, tb_m=64, tb_n=64, tb_k=16, w_m=32,
            w_n=32, stages=2)
        assert t.gflops < 300

    def test_wu_hurts_more_without_async(self):
        """Paper Fig. 21: threadblock sync costs ~60% more on T4."""
        args = dict(tb_m=64, tb_n=64, tb_k=16, w_m=32, w_n=32, stages=2)
        for dev, lo in ((A100_PCIE_40GB, 1.1), (TESLA_T4, 1.3)):
            m = TimingModel(dev)
            base = m.distance_tensorop(M, 128, 128, np.float32, **args)
            wu = m.distance_tensorop(M, 128, 128, np.float32, abft="wu", **args)
            assert wu.time_s / base.time_s > lo


class TestAuxKernels:
    def test_norms_kernel_memory_bound(self, model):
        t = model.norms_kernel(M, 128, np.float32)
        assert t.limiter == "memory"

    def test_update_dmr_under_one_percent(self, model, dtype):
        """Sec. I: DMR on the update stage costs < 1%."""
        base = model.update_kernel(M, 64, 64, dtype, dmr=False)
        dmr = model.update_kernel(M, 64, 64, dtype, dmr=True)
        assert (dmr.time_s / base.time_s - 1) < 0.01

    def test_serial_update_much_slower(self, model):
        """The naive variant's one-kernel-per-centroid update."""
        fused = model.update_kernel(M, 64, 64, np.float32)
        serial = model.update_kernel(M, 64, 64, np.float32, serial_kernels=True)
        assert serial.time_s > 10 * fused.time_s


class TestSimClock:
    def test_accumulates(self, model):
        clock = SimClock()
        t = model.norms_kernel(M, 64, np.float32)
        clock.charge("norms", t)
        clock.charge("other", 1e-6)
        assert clock.elapsed_s == pytest.approx(t.time_s + 1e-6)
        assert clock.total("norms") == pytest.approx(t.time_s)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge("x", -1.0)

    def test_reset(self):
        clock = SimClock()
        clock.charge("x", 1.0)
        clock.reset()
        assert clock.elapsed_s == 0.0 and clock.log == []


class TestCalibrationOverride:
    def test_custom_calibration_changes_results(self):
        slow = TimingModel(A100_PCIE_40GB,
                           Calibration(eff_tensor_fp32=0.05))
        fast = TimingModel(A100_PCIE_40GB)
        args = _ft_tile_args(np.float32)
        assert (slow.distance_tensorop(M, 128, 128, np.float32, **args).gflops
                < fast.distance_tensorop(M, 128, 128, np.float32, **args).gflops)
