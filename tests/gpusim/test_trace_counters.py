"""Tests for the event trace, counter roll-up and simulator exceptions."""

import numpy as np
import pytest

from repro.gpusim.counters import PerfCounters
from repro.gpusim.errors import (
    GpuSimError,
    LaunchError,
    PipelineError,
    ResourceLimitExceeded,
    UncorrectableError,
)
from repro.gpusim.trace import NullTrace, Trace


class TestTrace:
    def test_emit_and_query(self):
        tr = Trace()
        tr.emit("fault", 3, 1, bit=7)
        tr.emit("correct", 3, 2, row=1, col=2)
        tr.emit("fault", 4, 0, bit=9)
        assert len(tr) == 3
        assert tr.count("fault") == 2
        faults = tr.of_kind("fault")
        assert faults[0].payload["bit"] == 7
        assert [e.block_id for e in tr] == [3, 3, 4]

    def test_null_trace_is_silent(self):
        nt = NullTrace()
        nt.emit("anything", 1, 2, x=3)
        assert len(nt) == 0
        assert nt.count("anything") == 0
        assert nt.of_kind("anything") == []


class TestCounters:
    def test_merge_accumulates_every_field(self):
        a = PerfCounters(flops=10, mma_ops=2, errors_detected=1)
        b = PerfCounters(flops=5, mma_ops=3, barriers=7)
        a.merge(b)
        assert a.flops == 15 and a.mma_ops == 5
        assert a.errors_detected == 1 and a.barriers == 7

    def test_reset(self):
        c = PerfCounters(flops=9, atomics=4)
        c.reset()
        assert c.flops == 0 and c.atomics == 0

    def test_abft_fraction(self):
        c = PerfCounters(mma_ops=32, abft_mma_ops=3)
        assert c.abft_mma_fraction == pytest.approx(3 / 32)
        assert PerfCounters().abft_mma_fraction == 0.0

    def test_total_global_bytes(self):
        c = PerfCounters(global_loads=10, global_stores=5, async_copies=7)
        assert c.total_global_bytes == 22

    def test_snapshot_is_plain_dict(self):
        snap = PerfCounters(flops=3).snapshot()
        assert snap["flops"] == 3
        assert isinstance(snap, dict)


class TestExceptionHierarchy:
    def test_all_derive_from_gpusimerror(self):
        for exc in (LaunchError, ResourceLimitExceeded, PipelineError,
                    UncorrectableError):
            assert issubclass(exc, GpuSimError)

    def test_resource_limit_is_launch_error(self):
        """The feasibility filter catches launch errors generically."""
        assert issubclass(ResourceLimitExceeded, LaunchError)
