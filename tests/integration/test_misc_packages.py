"""Tests for baselines, data generators and the bench harness plumbing."""

import numpy as np
import pytest

from repro.baselines.cuml_like import CuMLKMeans, cuml_assignment
from repro.baselines.sklearn_like import lloyd_reference
from repro.baselines.wu_ft_kmeans import WuFTKMeans
from repro.bench.metrics import geomean, gflops, overhead_pct, speedup
from repro.bench.tables import format_figure
from repro.bench.workloads import (
    FIG7_SWEEP,
    M_PAPER,
    fig8_sweeps,
    fig10_sweeps,
    fig12_grid,
)
from repro.data.quantization import (
    quantize_pixels,
    reconstruction_psnr,
    synthetic_image,
)
from repro.data.synthetic import (
    anisotropic_blobs,
    benchmark_operands,
    gaussian_blobs,
    uniform_matrix,
)


class TestBaselines:
    def test_cuml_same_clustering_as_ft(self, blobs):
        """cuML differs in speed, not results."""
        from repro.core.api import FTKMeans

        x, _, _ = blobs
        ours = FTKMeans(n_clusters=5, seed=1).fit(x)
        cuml = CuMLKMeans(n_clusters=5, seed=1).fit(x)
        assert np.array_equal(ours.labels_, cuml.labels_)

    def test_cuml_slower_at_paper_scale(self):
        from repro.codegen.selector import KernelSelector
        from repro.gpusim.device import A100_PCIE_40GB

        cu = cuml_assignment(A100_PCIE_40GB, np.float32)
        t_cu = sum(t.time_s for _, t in cu.estimate(M_PAPER, 32, 64))
        sel = KernelSelector.for_device("a100", np.float32)
        tile = sel.best_tile(M_PAPER, 32, 64)
        from repro.core.tensorop import TensorOpAssignment

        ours = TensorOpAssignment(A100_PCIE_40GB, np.float32, tile=tile)
        t_ours = sum(t.time_s for _, t in ours.estimate(M_PAPER, 32, 64))
        assert t_ours < t_cu

    def test_lloyd_reference_converges(self, blobs):
        x, _, _ = blobs
        res = lloyd_reference(x, 5, seed=0)
        assert res.n_iter_ < 50
        h = res.inertia_history_
        assert h[-1] <= h[0]

    def test_wu_ft_kmeans_runs(self, blobs):
        x, _, _ = blobs
        km = WuFTKMeans(n_clusters=5, seed=1, mode="functional",
                        p_inject=0.5).fit(x)
        clean = lloyd_reference(x, 5, seed=1)
        assert km.inertia_ == pytest.approx(clean.inertia_, rel=0.02)


class TestMetrics:
    def test_gflops(self):
        assert gflops(1000, 10, 10, 1.0) == pytest.approx(2e-4)
        with pytest.raises(ValueError):
            gflops(1, 1, 1, 0.0)

    def test_overhead_pct(self):
        assert overhead_pct(100.0, 90.0) == pytest.approx(11.111, rel=1e-3)
        assert overhead_pct(100.0, 100.0) == 0.0

    def test_speedup(self):
        assert speedup(20.0, 10.0) == 2.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])


class TestWorkloads:
    def test_fig7_shapes(self):
        shapes = list(FIG7_SWEEP.shapes())
        assert all(m == M_PAPER and nf == 128 for m, _, nf in shapes)
        assert [nc for _, nc, _ in shapes] == list(range(32, 193, 32))

    def test_fig8_panels(self):
        sweeps = fig8_sweeps()
        assert [s.name for s in sweeps] == ["K=8", "K=128"]
        for s in sweeps:
            assert all(nc in (8, 128) for _, nc, _ in s.shapes())

    def test_fig10_panels(self):
        assert [s.name for s in fig10_sweeps()] == ["N=8", "N=128"]

    def test_fig12_grid_size(self):
        grid = fig12_grid()
        assert len(grid) == 7 * 8
        assert all(m == M_PAPER for m, _, _ in grid)


class TestTables:
    def test_format_figure(self):
        from repro.bench.figures import FigureResult

        res = FigureResult("figX", "demo", "x")
        res.add("a", 1, 10.0)
        res.add("a", 2, 20.0)
        res.summary = {"note": "hi"}
        text = format_figure(res)
        assert "figX" in text and "note" in text and "10.0" in text


class TestSyntheticData:
    def test_gaussian_blobs_structure(self):
        x, centers, labels = gaussian_blobs(100, 8, 4, seed=0)
        assert x.shape == (100, 8)
        assert centers.shape == (4, 8)
        assert labels.shape == (100,) and labels.max() == 3
        # samples sit near their centers
        d = np.linalg.norm(x - centers[labels], axis=1)
        assert np.percentile(d, 95) < 4.0

    def test_uniform_matrix_bounds(self):
        m = uniform_matrix(50, 10, seed=0, low=-2, high=3)
        assert m.min() >= -2 and m.max() <= 3

    def test_benchmark_operands_shapes(self):
        x, y = benchmark_operands(100, 8, 16, np.float64, seed=1)
        assert x.shape == (100, 16) and y.shape == (8, 16)
        assert x.dtype == np.float64

    def test_anisotropic_blobs(self):
        x, labels = anisotropic_blobs(120, 6, 3, seed=0)
        assert x.shape == (120, 6)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_reproducible(self):
        a, _, _ = gaussian_blobs(50, 4, 2, seed=9)
        b, _, _ = gaussian_blobs(50, 4, 2, seed=9)
        np.testing.assert_array_equal(a, b)


class TestQuantizationWorkload:
    def test_synthetic_image_range(self):
        img = synthetic_image(32, 48, seed=0)
        assert img.shape == (32, 48, 3)
        assert img.min() >= 0 and img.max() <= 1

    def test_quantize_pixels(self):
        img = synthetic_image(16, 16, seed=0)
        px = quantize_pixels(img)
        assert px.shape == (256, 3)
        with pytest.raises(ValueError):
            quantize_pixels(px)

    def test_kmeans_palette_improves_psnr(self):
        """More palette entries → better reconstruction."""
        from repro.core.api import FTKMeans

        img = synthetic_image(32, 32, seed=3, n_modes=5)
        px = quantize_pixels(img)
        psnr = {}
        for k in (2, 8):
            km = FTKMeans(n_clusters=k, seed=0).fit(px)
            psnr[k] = reconstruction_psnr(img, km.labels_, km.cluster_centers_)
        assert psnr[8] > psnr[2] > 5.0
