"""Integration tests asserting the paper's headline claims hold in the
reproduction (shape, not absolute numbers)."""

import numpy as np
import pytest

from repro.bench import figures
from repro.gpusim.counters import PerfCounters


@pytest.fixture(scope="module")
def fig12_fp32():
    return figures.fig12_speedup_grid(np.float32)


@pytest.fixture(scope="module")
def fig12_fp64():
    return figures.fig12_speedup_grid(np.float64)


class TestFig7Claims:
    def test_stepwise_ladder(self):
        res = figures.fig7_stepwise()
        s = res.summary
        assert s["v1_over_naive"] > 3          # paper: ~10x (GEMM rewrite)
        assert 1.0 < s["v2_over_v1"] < 1.6     # paper: 1.13-1.27x
        assert 1.0 < s["v3_over_v2"] < 1.4     # paper: 1.04-1.17x
        assert s["ft_over_v3"] > 1.4           # paper: 1.45x+ (tensor cores)
        assert 1.4 < s["ft_over_cuml"] < 3.0   # paper: 1.83x

    def test_absolute_gflops_scale(self):
        res = figures.fig7_stepwise()
        means = res.summary["mean_gflops"]
        # within ~2x of the paper's bars
        paper = res.summary["paper"]
        for name in ("naive", "v1", "v2", "v3", "ftkmeans", "cuml"):
            assert paper[name] / 2.5 < means[name] < paper[name] * 2.5, name


class TestFig12Claims:
    def test_fp32_average_speedup(self, fig12_fp32):
        """Paper: avg 2.49x, max 4.55x."""
        s = fig12_fp32.summary
        assert 1.8 < s["avg_speedup"] < 3.2
        assert s["max_speedup"] > 3.0
        assert s["min_speedup"] >= 1.0

    def test_fp64_marginal_speedup(self, fig12_fp64):
        """Paper: avg 1.04x, max 1.39x — FP64 has little headroom."""
        s = fig12_fp64.summary
        assert 1.0 <= s["avg_speedup"] < 1.45
        assert s["max_speedup"] < 2.2

    def test_fp32_gains_shrink_with_features(self, fig12_fp32):
        """Paper: speedup diminishes beyond N=64."""
        small_n = np.mean([y for name, pts in fig12_fp32.series.items()
                           if name in ("N=8", "N=24") for _, y in pts])
        large_n = np.mean([y for name, pts in fig12_fp32.series.items()
                           if name in ("N=104", "N=120") for _, y in pts])
        assert small_n > large_n

    def test_fp32_beats_fp64_headroom(self, fig12_fp32, fig12_fp64):
        assert fig12_fp32.summary["avg_speedup"] \
            > fig12_fp64.summary["avg_speedup"] + 0.5


class TestSelectionClaims:
    def test_few_parameters_win(self):
        """Paper: 7 FP32 / 4 FP64 groups of ~150 candidates are ever
        chosen."""
        for dt in (np.float32, np.float64):
            res = figures.fig13_table1_selected_parameters(dt)
            assert res.summary["n_selected"] <= 20
            assert res.summary["n_candidates"] >= 100

    def test_selection_map_has_feature_regions(self):
        """Paper Fig. 14: winners change along the feature dimension."""
        res = figures.fig14_selection_map(np.float32)
        rows = res.summary["winners_by_feature_row"]
        distinct = {tuple(v) for v in rows.values()}
        assert len(distinct) >= 2


class TestOverheadClaims:
    def test_fp32_ft_overhead_small(self):
        """Paper Fig. 15: FP32 FT overhead ~ -0.24%..1.93%."""
        res = figures.fig15_fig16_ft_overhead(np.float32)
        assert res.summary["overhead_pct_avg"] < 5.0

    def test_fp64_ft_overhead_larger(self):
        """Paper Fig. 16: FP64 overhead ~13% avg, 20% at K=128."""
        res = figures.fig15_fig16_ft_overhead(np.float64)
        assert 5.0 < res.summary["overhead_pct_avg"] < 30.0
        assert res.summary["overhead_pct_by_panel"]["K=128"] > 10.0

    def test_overhead_far_below_theoretical(self):
        """Paper Sec. IV-B: theoretical 3/(m_w*n_w) ≈ 19-37% vs ~11%
        observed — the fusion hides most of it on FP32."""
        res = figures.fig15_fig16_ft_overhead(np.float32)
        assert res.summary["overhead_pct_avg"] < 18.75 / 2


class TestInjectionClaims:
    def test_fp32_injection_overhead(self):
        """Paper Fig. 17: ~2.36% under injection."""
        res = figures.fig17_fig18_error_injection(np.float32)
        assert res.summary["injection_overhead_pct_avg"] < 6.0

    def test_fp64_injection_overhead(self):
        """Paper Fig. 18: ~9.21%."""
        res = figures.fig17_fig18_error_injection(np.float64)
        assert 4.0 < res.summary["injection_overhead_pct_avg"] < 15.0

    def test_wu_overhead_substantial(self):
        """Paper: Wu's scheme ~30% (no async copy)."""
        res = figures.fig17_fig18_error_injection(np.float32)
        assert res.summary["wu_overhead_pct_avg"] > 20.0


class TestT4Claims:
    def test_t4_speedups_larger_than_a100(self):
        """Paper: 4.13x / 3.81x on T4 vs 2.35x / 2.39x on A100."""
        t4 = figures.fig19_t4_vs_features()
        a100 = figures.fig8_fig9_distance_vs_features(np.float32)
        assert t4.summary["ft_vs_cuml_mean"] > 2.0
        assert t4.summary["ft_vs_cuml_mean"] > a100.summary["ft_vs_cuml_mean"] * 0.7

    def test_t4_ft_beats_wu(self):
        """Paper: ~60% improvement over Wu's under injection on T4."""
        res = figures.fig21_t4_injection()
        assert res.summary["ft_vs_wu_mean"] > 1.25
