"""Unit tests for the ordered event bus and the legacy hook shim."""

import json

import pytest

from repro.obs.events import Event, EventBus, legacy_hook_adapter


class TestOrdering:
    def test_seq_is_monotonic_and_total(self):
        bus = EventBus()
        events = [bus.publish("a", source="x"),
                  bus.publish("b", source="y"),
                  bus.publish("c", source="x")]
        assert [e.seq for e in events] == [1, 2, 3]
        assert [e.seq for e in bus.history] == [1, 2, 3]

    def test_subscribers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append(("first", e.kind)))
        bus.subscribe(lambda e: order.append(("second", e.kind)))
        bus.publish("tick")
        assert order == [("first", "tick"), ("second", "tick")]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        token = bus.subscribe(seen.append)
        bus.publish("one")
        bus.unsubscribe(token)
        bus.publish("two")
        assert [e.kind for e in seen] == ["one"]

    def test_subscriber_exception_propagates(self):
        """The legacy hook contract: a failing hook fails the fit
        loudly, never drops events silently."""
        bus = EventBus()

        def bad(event):
            raise RuntimeError("hook broke")

        bus.subscribe(bad)
        with pytest.raises(RuntimeError, match="hook broke"):
            bus.publish("tick")

    def test_history_is_bounded(self):
        bus = EventBus(max_history=3)
        for i in range(5):
            bus.publish("e", i=i)
        assert len(bus) == 3
        assert [e.fields["i"] for e in bus.history] == [2, 3, 4]
        # seq keeps counting even after history wraps
        assert bus.history[-1].seq == 5


class TestLegacyShim:
    def test_adapter_reshapes_to_pr7_payload(self):
        seen = []
        sub = legacy_hook_adapter(seen.append)
        sub(Event(kind="promote", source="fleet", seq=7,
                  fields={"lost": [1], "n_workers": 2}))
        assert seen == [{"event": "promote", "lost": [1], "n_workers": 2}]

    def test_adapter_exposes_wrapped_hook(self):
        def hook(d):
            pass

        assert legacy_hook_adapter(hook).__wrapped_hook__ is hook

    def test_old_and_new_subscribers_see_identical_sequences(self):
        bus = EventBus()
        legacy_seen, new_seen = [], []
        bus.subscribe_legacy(legacy_seen.append)
        bus.subscribe(new_seen.append)
        bus.publish("heartbeat", source="fleet", iteration=1)
        bus.publish("shrink", source="fleet", lost=[0], n_workers=1)
        bus.publish("expand", source="fleet", grown=[2], n_workers=2)
        assert legacy_seen == [e.to_legacy_dict() for e in new_seen]
        assert [e.seq for e in new_seen] == [1, 2, 3]


class TestExport:
    def test_event_is_frozen(self):
        e = Event(kind="a", source="b", seq=1)
        with pytest.raises(Exception):
            e.kind = "c"

    def test_to_jsonl_round_trips(self):
        bus = EventBus()
        bus.publish("checkpoint_save", source="checkpoint",
                    iteration=2, nbytes=128, mode="async")
        (doc,) = [json.loads(line)
                  for line in bus.to_jsonl().strip().split("\n")]
        assert doc == {"kind": "checkpoint_save", "source": "checkpoint",
                       "seq": 1, "iteration": 2, "nbytes": 128,
                       "mode": "async"}
