"""Unit tests for the typed metrics registry.

Includes the registry-completeness tier-1 guard: every
``PerfCounters`` field must have a registered ``sim.*`` metric, so a
new simulator counter cannot silently bypass export.
"""

import json

import pytest

from repro.core.engine import EngineStats, FastPathEngine  # noqa: F401
from repro.gpusim.counters import PerfCounters
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    dist_result_metric_names,
    engine_stat_metric_names,
    perf_counter_metric_names,
)


class TestMetricTypes:
    def test_counter_is_monotonic(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.get() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("frac")
        g.set(0.5)
        g.set(0.25)
        assert g.get() == 0.25

    def test_histogram_stats_and_bounded_reservoir(self):
        h = Histogram("lat", max_samples=3)
        assert h.get() == {"count": 0, "sum": 0.0, "min": None,
                           "max": None, "mean": None}
        for v in (1.0, 3.0, 2.0, 10.0):
            h.observe(v)
        got = h.get()
        assert got["count"] == 4 and got["sum"] == 16.0
        assert got["min"] == 1.0 and got["max"] == 10.0
        assert got["mean"] == 4.0
        assert h.samples == [1.0, 3.0, 2.0]  # reservoir stays bounded


class TestRegistry:
    def test_registration_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert len(r) == 1

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x")

    def test_snapshot_and_delta(self):
        r = MetricsRegistry()
        c = r.counter("n")
        g = r.gauge("v")
        h = r.histogram("d")
        c.inc(2)
        g.set(1.5)
        h.observe(4.0)
        before = r.snapshot()
        c.inc(3)
        g.set(2.5)
        h.observe(6.0)
        delta = MetricsRegistry.delta(before, r.snapshot())
        assert delta["n"] == 3
        assert delta["v"] == 1.0
        assert delta["d"] == {"count": 1, "sum": 6.0}

    def test_delta_handles_new_names(self):
        after = {"fresh": 7}
        assert MetricsRegistry.delta({}, after) == {"fresh": 7}

    def test_to_jsonl_lists_every_metric(self):
        r = MetricsRegistry()
        r.counter("a", "help a").inc(1)
        r.gauge("b").set(2.0)
        docs = [json.loads(line)
                for line in r.to_jsonl().strip().split("\n")]
        assert {d["name"] for d in docs} == {"a", "b"}
        assert {d["kind"] for d in docs} == {"counter", "gauge"}


class TestCompleteness:
    """Tier-1 guard: the three legacy counter surfaces are fully
    registered — a new field cannot silently bypass export."""

    def test_every_perf_counter_field_is_registered(self):
        r = MetricsRegistry()
        registered = set(r.register_perf_counters())
        expected = {f"sim.{name}"
                    for name in PerfCounters.__dataclass_fields__}
        assert registered == expected
        assert all(name in r for name in expected)
        # and the canonical-name helper agrees
        assert set(perf_counter_metric_names()) == expected

    def test_every_engine_stat_field_is_registered(self):
        r = MetricsRegistry()
        registered = set(r.register_engine_stats())
        expected = {f"engine.{name}"
                    for name in EngineStats.__dataclass_fields__}
        assert registered == expected == set(engine_stat_metric_names())
        # float fields export as gauges, int fields as counters
        assert r.get("engine.last_active_frac").kind == "gauge"
        assert r.get("engine.chunks_run").kind == "counter"

    def test_dist_scalar_fields_are_registered(self):
        from repro.dist.coordinator import DistFitResult

        r = MetricsRegistry()
        registered = set(r.register_dist_result())
        assert registered == set(dist_result_metric_names())
        # every exported name is a real DistFitResult field
        for reg_name, fld in dist_result_metric_names().items():
            assert fld in DistFitResult.__dataclass_fields__, fld
        assert r.get("dist.inertia").kind == "gauge"
        assert r.get("dist.recoveries").kind == "counter"


class TestIngestion:
    def test_register_loads_live_values(self):
        counters = PerfCounters()
        counters.flops = 42
        counters.errors_detected = 3
        r = MetricsRegistry()
        r.register_perf_counters(counters)
        assert r.get("sim.flops").get() == 42
        assert r.get("sim.errors_detected").get() == 3

    def test_register_engine_stats_loads_live_values(self):
        stats = EngineStats()
        stats.chunks_run = 9
        stats.last_active_frac = 0.125
        r = MetricsRegistry()
        r.register_engine_stats(stats)
        assert r.get("engine.chunks_run").get() == 9
        assert r.get("engine.last_active_frac").get() == 0.125

    def test_accumulator_lifetime_metrics(self):
        import numpy as np

        from repro.core.accumulate import StreamedAccumulator

        acc = StreamedAccumulator(2, 3)
        x = np.ones((4, 3), dtype=np.float32)
        labels = np.zeros(4, dtype=np.int32)
        acc.feed(x, labels)
        acc.reset()                      # per-iteration reset ...
        acc.feed(x, labels)
        # ... must not zero the lifetime tallies
        assert acc.metrics() == {"total_feeds": 2, "total_rows_fed": 8}
