"""End-to-end observability contracts on real fits.

Three guarantees the ISSUE pins down:

* **Neutrality** — labels/centroids are bit-identical with tracing on
  vs. off, including under SEU injection (also covered by a hypothesis
  case in ``tests/property``).
* **Zero cost when off** — a fit with a *disabled* recorder never
  calls into it (booby-trapped recorder), and the disabled path stays
  within a generous wall budget of the no-recorder path.
* **Shim fidelity** — a legacy ``event_hook`` and a bus subscriber
  observe identical ordered event sequences on a real recovering fit.
"""

import time

import numpy as np
import pytest

from repro.core.api import FTKMeans
from repro.dist.faults import WorkerFaultInjector
from repro.obs import EventBus, TraceRecorder


def _data(m=512, n=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((m, n), dtype=np.float64).astype(np.float32)


def _fit(x, *, tracer=None, event_bus=None, event_hook=None, workers=1,
         p_inject=0.0, worker_faults=None, checkpoint_every=0):
    km = FTKMeans(n_clusters=8, variant="ft" if p_inject else "tensorop",
                  mode="fast", max_iter=5, tol=0.0, seed=0,
                  p_inject=p_inject, n_workers=workers,
                  executor="serial" if workers == 1 else "thread",
                  checkpoint_every=checkpoint_every,
                  worker_faults=worker_faults,
                  tracer=tracer, event_bus=event_bus,
                  event_hook=event_hook)
    km.fit(x)
    return km


class BoobyTrappedRecorder(TraceRecorder):
    """A disabled recorder that detonates if anything calls into it."""

    def __init__(self):
        super().__init__(enabled=False)

    def span(self, name, **meta):  # pragma: no cover - must never run
        raise AssertionError("disabled recorder was invoked")

    def instant(self, name, **meta):  # pragma: no cover
        raise AssertionError("disabled recorder was invoked")


class TestNeutrality:
    def test_single_worker_bit_identical_with_tracing(self):
        x = _data()
        base = _fit(x)
        traced = _fit(x, tracer=TraceRecorder())
        assert np.array_equal(base.labels_, traced.labels_)
        assert np.array_equal(base.cluster_centers_.view(np.uint32),
                              traced.cluster_centers_.view(np.uint32))

    def test_bit_identical_under_seu_injection(self):
        x = _data()
        base = _fit(x, p_inject=0.5)
        traced = _fit(x, p_inject=0.5, tracer=TraceRecorder())
        assert np.array_equal(base.labels_, traced.labels_)
        assert np.array_equal(base.cluster_centers_.view(np.uint32),
                              traced.cluster_centers_.view(np.uint32))

    def test_dist_fit_bit_identical_with_tracing(self):
        x = _data()
        base = _fit(x, workers=2)
        rec = TraceRecorder()
        traced = _fit(x, workers=2, tracer=rec)
        assert np.array_equal(base.labels_, traced.labels_)
        assert np.array_equal(base.cluster_centers_.view(np.uint32),
                              traced.cluster_centers_.view(np.uint32))
        names = {s.name for s in rec.spans}
        # the coordinator taxonomy landed
        assert {"fit", "round", "gather", "merge", "update"} <= names

    def test_engine_taxonomy_lands_single_worker(self):
        rec = TraceRecorder()
        _fit(_data(), tracer=rec)
        names = {s.name for s in rec.spans}
        assert {"fit", "iteration", "assign_chunk", "gemm",
                "update_feed"} <= names
        fits = [s for s in rec.spans if s.name == "fit"]
        assert len(fits) == 1 and fits[0].depth == 0


class TestZeroCostWhenOff:
    def test_disabled_recorder_is_never_invoked(self):
        """The gate resolves a disabled recorder to the shared null
        ONCE per pass — the user's recorder object is never called."""
        trap = BoobyTrappedRecorder()
        km = _fit(_data(), tracer=trap)
        assert km.n_iter_ >= 1
        assert len(trap) == 0

    def test_disabled_recorder_is_never_invoked_dist(self):
        trap = BoobyTrappedRecorder()
        km = _fit(_data(), workers=2, tracer=trap)
        assert km.n_iter_ >= 1
        assert len(trap) == 0

    def test_disabled_path_within_wall_budget(self):
        """Per-iteration cost with a disabled recorder stays within a
        generous budget of the no-recorder fit (same data, same
        trajectory; the budget absorbs scheduler jitter, a real
        per-span leak on the disabled path would blow far past it)."""
        x = _data(m=4096, n=32)

        def timed(**kw):
            t0 = time.perf_counter()
            km = _fit(x, **kw)
            return (time.perf_counter() - t0) / km.n_iter_

        baseline = min(timed() for _ in range(3))
        disabled = min(timed(tracer=BoobyTrappedRecorder())
                       for _ in range(3))
        assert disabled <= 2.0 * baseline + 0.05


class TestEventShimOnRealFits:
    def test_legacy_hook_and_bus_subscriber_identical_ordered(self):
        """The PR 7 ``event_hook`` must see exactly the fleet event
        stream it always saw — the fleet-sourced subsequence of the
        bus, in bus order — while a new subscriber also gets the
        coordinator/checkpoint kinds the old hook never carried."""
        from repro.core.api import FTKMeans as KM

        x = _data()
        legacy_seen, new_seen = [], []
        bus = EventBus()
        bus.subscribe(new_seen.append)
        km = KM(n_clusters=8, variant="tensorop", mode="fast",
                max_iter=5, tol=0.0, seed=0, n_workers=3,
                executor="serial", checkpoint_every=2, hot_spares=1,
                worker_faults=WorkerFaultInjector.crash_at(1, 4),
                event_bus=bus, event_hook=legacy_seen.append)
        km.fit(x)
        assert legacy_seen, "no fleet events reached the legacy hook"
        fleet_events = [e for e in new_seen if e.source == "fleet"]
        assert legacy_seen == [e.to_legacy_dict() for e in fleet_events]
        assert [e["event"] for e in legacy_seen] == ["promote"]
        # the full bus carries strictly more than the legacy surface
        kinds = [e.kind for e in new_seen]
        assert "checkpoint_save" in kinds
        assert len(new_seen) > len(fleet_events)
        seqs = [e.seq for e in new_seen]
        assert seqs == sorted(seqs)

    def test_bus_sees_recovery_ordering_on_crash(self):
        """A crash-restore fit publishes coordinator recovery events
        in causal order with correct source tags."""
        x = _data()
        new_seen = []
        bus = EventBus()
        bus.subscribe(new_seen.append)
        _fit(x, workers=2, checkpoint_every=1,
             worker_faults=WorkerFaultInjector.crash_at(0, 2),
             event_bus=bus)
        seqs = [e.seq for e in new_seen]
        assert seqs == sorted(seqs)
        kinds = [e.kind for e in new_seen]
        assert "recovery" in kinds and "restore" in kinds
        assert "checkpoint_save" in kinds
        assert kinds.index("recovery") < kinds.index("restore")
        sources = {e.kind: e.source for e in new_seen}
        assert sources["recovery"] == "coordinator"
        assert sources["checkpoint_save"] == "checkpoint"

    def test_bus_history_replays_the_fit(self):
        bus = EventBus()
        _fit(_data(), workers=2, checkpoint_every=1, event_bus=bus)
        kinds = [e.kind for e in bus.history]
        assert "executor_start" in kinds
        assert "checkpoint_save" in kinds
        assert len(bus) == len(kinds)

    def test_fleet_manager_always_exposes_a_bus(self):
        from repro.dist.fleet import FleetManager

        seen = []
        fm = FleetManager(event_hook=seen.append)
        assert isinstance(fm.event_bus, EventBus)
        fm.event_bus.publish("heartbeat", source="fleet", iteration=0)
        assert seen == [{"event": "heartbeat", "iteration": 0}]
