"""Unit tests for the bounded span tracer."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Span,
    TraceRecorder,
    active_tracer,
)


class FakeClock:
    """Deterministic perf_counter stand-in (advances 1.0 per read)."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestSpanNesting:
    def test_depth_and_parent_follow_the_stack(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("fit"):
            with rec.span("iteration", iteration=0):
                with rec.span("gemm"):
                    pass
                with rec.span("update_feed"):
                    pass
        by_name = {s.name: s for s in rec.spans}
        assert by_name["fit"].depth == 0 and by_name["fit"].parent == ""
        assert by_name["iteration"].depth == 1
        assert by_name["iteration"].parent == "fit"
        assert by_name["gemm"].depth == 2
        assert by_name["gemm"].parent == "iteration"
        assert by_name["update_feed"].parent == "iteration"
        # completion order: innermost finish first
        assert [s.name for s in rec.spans] == [
            "gemm", "update_feed", "iteration", "fit"]

    def test_meta_and_wall(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("chunk", lo=0, hi=128):
            pass
        (span,) = rec.spans
        assert span.meta == {"lo": 0, "hi": 128}
        assert span.wall_s == pytest.approx(1.0)  # one clock tick inside

    def test_explicit_handle_enter_exit(self):
        """The coordinator uses explicit __enter__/__exit__ handles."""
        rec = TraceRecorder(clock=FakeClock())
        h = rec.span("fit")
        h.__enter__()
        with rec.span("round", iteration=1):
            pass
        h.__exit__(None, None, None)
        assert [s.name for s in rec.spans] == ["round", "fit"]
        assert rec.spans[0].parent == "fit"

    def test_out_of_order_finish_unwinds_robustly(self):
        """A worker thread finishing after its parent closed must not
        wedge the stack."""
        rec = TraceRecorder(clock=FakeClock())
        outer = rec.span("outer")
        outer.__enter__()
        inner = rec.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)   # parent closes first
        inner.__exit__(None, None, None)   # child is already off-stack
        assert {s.name for s in rec.spans} == {"outer", "inner"}
        # the stack fully unwound: a new root span has depth 0 again
        with rec.span("next"):
            pass
        assert rec.spans[-1].depth == 0


class TestBoundsAndExport:
    def test_ring_is_bounded_and_counts_drops(self):
        rec = TraceRecorder(max_spans=4, clock=FakeClock())
        for i in range(7):
            with rec.span("s", i=i):
                pass
        assert len(rec) == 4
        assert rec.dropped == 3
        assert [s.meta["i"] for s in rec.spans] == [3, 4, 5, 6]

    def test_clear_resets_everything(self):
        rec = TraceRecorder(max_spans=2, clock=FakeClock())
        for _ in range(3):
            with rec.span("s"):
                pass
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_instant_records_zero_duration_marker(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("fit"):
            rec.instant("restore", iteration=3)
        marker = rec.spans[0]
        assert marker.name == "restore"
        assert marker.wall_s == 0.0
        assert marker.parent == "fit"

    def test_stage_totals_aggregates_walls_and_counts(self):
        rec = TraceRecorder(clock=FakeClock())
        for _ in range(3):
            with rec.span("gemm"):
                pass
        totals = rec.stage_totals()
        assert totals["gemm"]["count"] == 3
        assert totals["gemm"]["wall_s"] == pytest.approx(3.0)

    def test_to_jsonl_round_trips(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("fit", m=10):
            pass
        lines = rec.to_jsonl().strip().split("\n")
        (doc,) = [json.loads(line) for line in lines]
        assert doc["name"] == "fit"
        assert doc["meta"] == {"m": 10}
        assert doc["wall_s"] == pytest.approx(1.0)

    def test_span_to_dict_omits_empty_meta(self):
        s = Span(name="x", t0=1.0, t1=2.0)
        assert "meta" not in s.to_dict()


class TestDisabledPath:
    def test_disabled_recorder_never_touches_clock_or_ring(self):
        calls = []

        def trapped_clock():
            calls.append(1)
            return 0.0

        rec = TraceRecorder(enabled=False, clock=trapped_clock)
        with rec.span("fit"):
            with rec.span("gemm"):
                pass
        rec.instant("marker")
        assert len(rec) == 0 and calls == []

    def test_disabled_recorder_returns_shared_handle(self):
        rec = TraceRecorder(enabled=False)
        assert rec.span("a") is rec.span("b")

    def test_active_tracer_gates(self):
        live = TraceRecorder()
        assert active_tracer(live) is live
        assert active_tracer(None) is NULL_TRACER
        assert active_tracer(TraceRecorder(enabled=False)) is NULL_TRACER

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x", a=1):
            pass
        assert NULL_TRACER.instant("y") is None
        assert NULL_TRACER.stage_totals() == {}
        assert NULL_TRACER.spans == ()


class TestStreamingSink:
    """The optional JSONL sink appends each span the moment it closes —
    a crash mid-fit loses nothing already streamed."""

    def test_spans_stream_as_they_close(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rec = TraceRecorder(clock=FakeClock(), sink=out)
        with rec.span("fit"):
            with rec.span("round", iteration=0):
                pass
            # the inner span is already on disk before the outer closes
            lines = out.read_text().splitlines()
            assert len(lines) == 1
            assert json.loads(lines[0])["name"] == "round"
        rec.instant("marker")
        rec.close_sink()
        docs = [json.loads(ln) for ln in out.read_text().splitlines()]
        assert [d["name"] for d in docs] == ["round", "fit", "marker"]
        assert docs[0]["meta"] == {"iteration": 0}
        assert rec.sink_spans == 3

    def test_sink_accepts_file_object_and_does_not_close_it(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with open(out, "w", encoding="utf-8") as fh:
            rec = TraceRecorder(clock=FakeClock(), sink=fh)
            with rec.span("a"):
                pass
            rec.close_sink()
            assert not fh.closed       # caller-owned handle stays open
        assert json.loads(out.read_text())["name"] == "a"

    def test_streamed_lines_survive_ring_eviction(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rec = TraceRecorder(clock=FakeClock(), max_spans=2, sink=out)
        for i in range(5):
            with rec.span(f"s{i}"):
                pass
        rec.close_sink()
        assert len(rec.spans) == 2 and rec.dropped == 3
        assert len(out.read_text().splitlines()) == 5

    def test_no_sink_means_no_file(self, tmp_path):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("a"):
            pass
        rec.close_sink()               # no-op without a sink
        assert rec.sink_spans == 0

    def test_disabled_recorder_never_opens_the_sink(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rec = TraceRecorder(enabled=False, sink=out)
        with rec.span("a"):
            pass
        rec.instant("b")
        rec.close_sink()
        assert not out.exists()
