"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.abft.corrector import CorrectionKind, Corrector
from repro.abft.detector import Detector, measure_residuals
from repro.abft.encoding import acc_checksum_triple, checksum_triple
from repro.abft.thresholds import ThresholdPolicy
from repro.gemm.reference import reference_update
from repro.gpusim.mma import round_tf32
from repro.utils.arrays import ceil_div, is_power_of_two, pad_to_multiple
from repro.utils.bits import flip_bit, num_bits


finite_f32 = st.floats(min_value=np.float32(-1e20), max_value=np.float32(1e20),
                       width=32, allow_nan=False, allow_infinity=False)


class TestBitFlipProperties:
    @given(value=finite_f32, bit=st.integers(0, 31))
    def test_involution(self, value, bit):
        """flip(flip(x)) == x for every value and bit."""
        v = np.float32(value)
        assert flip_bit(flip_bit(v, bit), bit) == v or (
            np.isnan(flip_bit(flip_bit(v, bit), bit)) and np.isnan(v))

    @given(value=finite_f32, bit=st.integers(0, 31))
    def test_flip_changes_representation(self, value, bit):
        v = np.float32(value)
        flipped = flip_bit(v, bit)
        # bit patterns always differ even when values compare equal (±0)
        assert v.tobytes() != flipped.tobytes()


class TestTf32Properties:
    @given(arrays(np.float32, st.integers(1, 64),
                  elements=st.floats(-1e6, 1e6, width=32)))
    def test_idempotent(self, x):
        once = round_tf32(x)
        np.testing.assert_array_equal(round_tf32(once), once)

    @given(arrays(np.float32, st.integers(1, 64),
                  elements=st.floats(-1e6, 1e6, width=32)))
    def test_error_bound(self, x):
        assume(np.all(np.abs(x) > 1e-30))
        rel = np.abs(round_tf32(x).astype(np.float64) - x) / np.abs(x)
        assert rel.max() <= 2.0 ** -11 + 1e-12


class TestChecksumProperties:
    @given(st.integers(2, 24), st.integers(2, 24), st.integers(1, 16),
           st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_factored_identity(self, m, n, k, seed):
        """(e1ᵀA)(Be1) == e1ᵀ(ABᵀ)e1 over random shapes."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((n, k))
        d = checksum_triple(a, b)
        c = acc_checksum_triple(a @ b.T)
        np.testing.assert_allclose(d, c, rtol=1e-9, atol=1e-9)

    @given(st.integers(4, 20), st.integers(4, 20),
           st.integers(0, 2 ** 32 - 1),
           st.floats(10.0, 1e6))
    @settings(max_examples=40, deadline=None)
    def test_single_error_always_detected_and_fixed_fp64(self, m, n, seed,
                                                         magnitude):
        """Any sufficiently large single corruption is located exactly."""
        rng = np.random.default_rng(seed)
        acc = rng.standard_normal((m, n))
        d = acc_checksum_triple(acc)
        original = acc.copy()
        i, j = int(rng.integers(m)), int(rng.integers(n))
        acc[i, j] += magnitude
        corr = Corrector(Detector(ThresholdPolicy(np.float64)))
        result, _ = corr.check_and_correct(d, acc)
        assert result.kind is CorrectionKind.CORRECTED
        assert (result.row, result.col) == (i, j)
        np.testing.assert_allclose(acc, original, rtol=1e-6, atol=1e-6)

    @given(st.integers(4, 20), st.integers(4, 20), st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_clean_tiles_never_flagged(self, m, n, seed):
        rng = np.random.default_rng(seed)
        acc = rng.standard_normal((m, n)).astype(np.float64)
        d = acc_checksum_triple(acc)
        det = Detector(ThresholdPolicy(np.float64))
        assert not det.is_faulty(measure_residuals(d, acc))


class TestArrayUtilProperties:
    @given(st.integers(0, 10 ** 9), st.integers(1, 10 ** 6))
    def test_ceil_div_bounds(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0

    @given(st.integers(1, 2 ** 30))
    def test_power_of_two_consistency(self, x):
        assert is_power_of_two(x) == (bin(x).count("1") == 1)

    @given(st.integers(1, 40), st.integers(1, 40),
           st.integers(1, 16), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_pad_preserves_content(self, rows, cols, mr, mc):
        a = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        out = pad_to_multiple(a, mr, mc)
        assert out.shape[0] % mr == 0 and out.shape[1] % mc == 0
        np.testing.assert_array_equal(out[:rows, :cols], a)
        assert out.sum() == a.sum()


class TestKMeansInvariants:
    @given(st.integers(10, 80), st.integers(2, 6), st.integers(2, 8),
           st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_update_centroids_are_means(self, m, k, f, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, f))
        labels = rng.integers(0, k, m)
        centroids, counts = reference_update(x, labels, k)
        assert counts.sum() == m
        for c in range(k):
            if counts[c]:
                np.testing.assert_allclose(centroids[c],
                                           x[labels == c].mean(axis=0),
                                           rtol=1e-9, atol=1e-9)

    @given(st.integers(20, 120), st.integers(2, 5),
           st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_lloyd_inertia_non_increasing(self, m, k, seed):
        from repro.baselines.sklearn_like import lloyd_reference

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, 4))
        res = lloyd_reference(x, k, seed=seed, tol=0.0, max_iter=15)
        h = np.array(res.inertia_history_)
        assert np.all(np.diff(h) <= 1e-9 * np.maximum(h[:-1], 1.0))

    @given(st.integers(10, 60), st.integers(1, 5),
           st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_labels_in_range(self, m, k, seed):
        from repro.core.api import FTKMeans

        rng = np.random.default_rng(seed)
        assume(m >= k)
        x = rng.standard_normal((m, 6)).astype(np.float32)
        km = FTKMeans(n_clusters=k, seed=seed, max_iter=5).fit(x)
        assert km.labels_.min() >= 0
        assert km.labels_.max() < k


class TestTilingProperties:
    @given(st.sampled_from([16, 32, 64, 128, 256]),
           st.sampled_from([32, 64, 128]),
           st.sampled_from([8, 16, 32]))
    @settings(max_examples=40, deadline=None)
    def test_valid_configs_have_consistent_resources(self, tb_m, w_m, tb_k):
        from repro.gemm.tiling import Tile3, TileConfig, validate_rules, THREAD_TILE

        thread = THREAD_TILE[np.dtype(np.float32)]
        tb = Tile3(tb_m, 64, tb_k)
        warp = Tile3(w_m, 32, tb_k)
        if validate_rules(tb, warp, thread):
            return  # invalid combination: nothing to check
        cfg = TileConfig(tb, warp, thread)
        assert cfg.threads_per_block == cfg.warps_per_block * 32
        assert cfg.smem_bytes(np.float32) \
            == cfg.stages * (tb_m + 64) * tb_k * 4
