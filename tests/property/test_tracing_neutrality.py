"""Hypothesis: tracing is numerics-neutral on arbitrary fits.

For any workload shape, seed and SEU-injection rate, a fit with a
:class:`~repro.obs.trace.TraceRecorder` attached must walk a
bit-identical trajectory to the same fit without one — the recorder
reads clocks only, never arrays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import FTKMeans
from repro.obs import TraceRecorder


def _fit(x, k, seed, p_inject, tracer):
    km = FTKMeans(n_clusters=k, mode="fast", max_iter=4, tol=0.0,
                  seed=seed, p_inject=p_inject,
                  variant="ft" if p_inject else "tensorop",
                  tracer=tracer)
    km.fit(x)
    return km


class TestTracingNeutrality:
    @given(m=st.integers(32, 300), n_features=st.sampled_from([4, 8, 16]),
           k=st.integers(2, 6), seed=st.integers(0, 2 ** 16),
           p_inject=st.sampled_from([0.0, 0.5, 1.0]))
    @settings(max_examples=8, deadline=None)
    def test_traced_fit_bit_identical(self, m, n_features, k, seed,
                                      p_inject):
        rng = np.random.default_rng(seed)
        x = rng.random((m, n_features), dtype=np.float64).astype(np.float32)
        base = _fit(x, k, seed, p_inject, tracer=None)
        rec = TraceRecorder()
        traced = _fit(x, k, seed, p_inject, tracer=rec)
        assert np.array_equal(base.labels_, traced.labels_)
        assert np.array_equal(base.cluster_centers_.view(np.uint32),
                              traced.cluster_centers_.view(np.uint32))
        assert base.inertia_ == traced.inertia_
        # spans really recorded (the traced run wasn't a silent no-op)
        assert {"fit", "iteration"} <= {s.name for s in rec.spans}
