"""Docs link-checker: stale documentation fails tier-1.

Every relative markdown link in README.md and under docs/ must resolve
to a real file (optionally with a ``#fragment``), and the docs tree the
README advertises must exist.  Absolute URLs are out of scope (no
network in tier-1).
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        links.append(target)
    return links


def test_docs_tree_exists():
    """The README-advertised documentation subsystem is present."""
    for name in ("architecture.md", "streaming.md", "distributed.md",
                 "api.md", "observability.md", "perf.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    assert doc.is_file()
    broken = []
    for target in _relative_links(doc):
        rel = target.split("#", 1)[0]
        if not rel:  # pure fragment link (#section): same-file anchor
            continue
        if not (doc.parent / rel).exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)} has broken links: {broken}"


def test_docs_cross_reference_each_other():
    """The docs form a navigable set (each links its companions)."""
    docs = {p.name: p.read_text() for p in (REPO_ROOT / "docs").glob("*.md")}
    assert "streaming.md" in docs["architecture.md"]
    assert "architecture.md" in docs["streaming.md"]
    assert "api.md" in docs["architecture.md"]
    assert "distributed.md" in docs["architecture.md"]
    assert "architecture.md" in docs["distributed.md"]
    assert "streaming.md" in docs["distributed.md"]
    assert "observability.md" in docs["architecture.md"]
    assert "observability.md" in docs["api.md"]
    assert "architecture.md" in docs["observability.md"]
    assert "perf.md" in docs["observability.md"]
    assert "observability.md" in docs["perf.md"]


def test_readme_links_docs():
    text = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/streaming.md",
                 "docs/distributed.md", "docs/api.md",
                 "docs/observability.md", "docs/perf.md"):
        assert name in text, f"README does not link {name}"
