"""Tests for array utilities."""

import numpy as np
import pytest

from repro.utils.arrays import (
    as_float,
    ceil_div,
    check_2d,
    is_power_of_two,
    pad_to_multiple,
)


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (8, 4, 2), (9, 4, 3),
        (131072, 128, 1024),
    ])
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(2 ** i) for i in range(20))

    def test_non_powers(self):
        assert not any(is_power_of_two(v) for v in (0, -2, 3, 6, 12, 100))


class TestPadToMultiple:
    def test_already_aligned(self):
        a = np.arange(12.0).reshape(4, 3)
        out = pad_to_multiple(a, 4, 3)
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out, a)

    def test_pads_with_zeros(self):
        a = np.ones((5, 3))
        out = pad_to_multiple(a, 4, 4)
        assert out.shape == (8, 4)
        assert out[:5, :3].sum() == 15
        assert out.sum() == 15

    def test_returns_copy(self):
        a = np.ones((4, 4))
        out = pad_to_multiple(a, 4, 4)
        out[0, 0] = 99
        assert a[0, 0] == 1

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.ones(3), 4, 4)


class TestCheck2d:
    def test_accepts_2d(self):
        a = check_2d(np.ones((2, 3)), "X")
        assert a.shape == (2, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_2d(np.ones(3), "X")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_2d(np.empty((0, 3)), "X")


class TestAsFloat:
    def test_contiguous(self):
        a = np.asfortranarray(np.ones((4, 4)))
        out = as_float(a, np.float32)
        assert out.flags["C_CONTIGUOUS"]
        assert out.dtype == np.float32
