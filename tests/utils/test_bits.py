"""Tests for bit-flip helpers (the SEU primitive)."""

import numpy as np
import pytest

from repro.utils.bits import (
    bits_to_float,
    flip_bit,
    flip_bit_array,
    float_to_bits,
    num_bits,
    random_bit_index,
)


class TestNumBits:
    def test_float32(self):
        assert num_bits(np.float32) == 32

    def test_float64(self):
        assert num_bits(np.float64) == 64


class TestRoundTrip:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.5, 3.14159, 1e30, -1e-30])
    def test_fp32_roundtrip(self, value):
        v = np.float32(value)
        assert bits_to_float(float_to_bits(v), np.float32) == v

    @pytest.mark.parametrize("value", [0.0, 1.0, -2.25, 1e300, 5e-324])
    def test_fp64_roundtrip(self, value):
        v = np.float64(value)
        assert bits_to_float(float_to_bits(v), np.float64) == v

    def test_rejects_non_float(self):
        with pytest.raises(TypeError):
            float_to_bits(np.int32(3))


class TestFlipBit:
    def test_sign_bit_fp32(self):
        assert flip_bit(np.float32(1.0), 31) == np.float32(-1.0)

    def test_sign_bit_fp64(self):
        assert flip_bit(np.float64(2.5), 63) == np.float64(-2.5)

    def test_flip_changes_value(self):
        v = np.float32(1.0)
        for bit in range(32):
            assert flip_bit(v, bit) != v

    def test_double_flip_is_identity(self):
        v = np.float32(123.456)
        for bit in (0, 10, 22, 23, 30, 31):
            assert flip_bit(flip_bit(v, bit), bit) == v

    def test_out_of_range_bit(self):
        with pytest.raises(ValueError):
            flip_bit(np.float32(1.0), 32)
        with pytest.raises(ValueError):
            flip_bit(np.float32(1.0), -1)

    def test_exponent_flip_magnitude(self):
        # flipping the top exponent bit of 1.0 produces a huge value
        v = flip_bit(np.float32(1.0), 30)
        assert abs(float(v)) > 1e30

    def test_mantissa_flip_is_small(self):
        v = flip_bit(np.float32(1.0), 0)
        assert abs(float(v) - 1.0) < 1e-6

    def test_preserves_dtype(self):
        assert flip_bit(np.float64(1.0), 5).dtype == np.float64


class TestFlipBitArray:
    def test_in_place(self):
        arr = np.ones((4, 4), dtype=np.float32)
        flip_bit_array(arr, 5, 31)
        assert arr.reshape(-1)[5] == -1.0
        assert np.sum(arr == 1.0) == 15


class TestRandomBitIndex:
    def test_in_range_fp32(self, rng):
        for _ in range(100):
            assert 0 <= random_bit_index(rng, np.float32) < 32

    def test_in_range_fp64(self, rng):
        for _ in range(100):
            assert 0 <= random_bit_index(rng, np.float64) < 64

    def test_covers_high_bits(self, rng):
        draws = {random_bit_index(rng, np.float32) for _ in range(500)}
        assert max(draws) >= 30  # exponent region gets sampled
